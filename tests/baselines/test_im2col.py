"""Tests for explicit im2col + GEMM convolution."""

import numpy as np
import pytest

from repro.baselines.im2col import Im2colKernel, im2col_matrix
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError


class TestLowering:
    def test_matrix_shape(self, rng):
        img = rng.standard_normal((3, 10, 12)).astype(np.float32)
        m = im2col_matrix(img, 3)
        assert m.shape == (27, 8 * 10)

    def test_rows_are_shifted_windows(self, rng):
        img = rng.standard_normal((1, 6, 6)).astype(np.float32)
        m = im2col_matrix(img, 3)
        # Row (ky=1, kx=2) equals the image shifted by (1, 2).
        row = m[1 * 3 + 2].reshape(4, 4)
        np.testing.assert_array_equal(row, img[0, 1:5, 2:6])

    def test_gemm_on_lowered_equals_convolution(self, rng):
        img = rng.standard_normal((2, 9, 9)).astype(np.float32)
        flt = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        m = im2col_matrix(img, 3)
        out = (flt.reshape(4, -1) @ m).reshape(4, 7, 7)
        np.testing.assert_allclose(out, conv2d_reference(img, flt),
                                   rtol=1e-4, atol=1e-4)

    def test_k1_is_flattened_image(self, rng):
        img = rng.standard_normal((2, 4, 4)).astype(np.float32)
        m = im2col_matrix(img, 1)
        np.testing.assert_array_equal(m, img.reshape(2, -1))

    def test_oversized_kernel_rejected(self, rng):
        with pytest.raises(ShapeError):
            im2col_matrix(rng.standard_normal((1, 4, 4)), 5)


class TestKernel:
    def test_functional(self, rng):
        kern = Im2colKernel()
        img = rng.standard_normal((3, 16, 20)).astype(np.float32)
        flt = rng.standard_normal((5, 3, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_same_padding(self, rng):
        kern = Im2colKernel()
        img = rng.standard_normal((2, 12, 12)).astype(np.float32)
        flt = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt, Padding.SAME),
            conv2d_reference(img, flt, Padding.SAME),
            rtol=1e-3, atol=1e-3,
        )

    def test_workspace_is_kk_blowup(self):
        p = ConvProblem.square(34, 3, channels=8, filters=16)
        kern = Im2colKernel()
        assert kern.workspace_bytes(p) == 8 * 9 * 32 * 32 * 4

    def test_cost_includes_two_launches(self):
        p = ConvProblem.square(64, 3, channels=16, filters=64)
        assert Im2colKernel().cost(p).launches == 2

    def test_slower_than_implicit_gemm_on_big_problems(self):
        """The extra GM round trip for the lowered matrix costs real
        bandwidth on bandwidth-heavy problems."""
        from repro.baselines.implicit_gemm import ImplicitGemmKernel

        p = ConvProblem.square(224, 3, channels=32, filters=64)
        im2col = Im2colKernel().gflops(p)
        implicit = ImplicitGemmKernel().gflops(p)
        assert im2col < 1.3 * implicit
