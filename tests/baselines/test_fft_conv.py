"""Tests for FFT-based convolution."""

import numpy as np
import pytest

from repro.baselines.fft_conv import FFTConvolution
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError


@pytest.fixture
def kernel():
    return FFTConvolution()


class TestFunctional:
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_matches_reference(self, rng, kernel, k):
        img = rng.standard_normal((2, 20, 24)).astype(np.float32)
        flt = rng.standard_normal((3, 2, k, k)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-2, atol=1e-3,
        )

    def test_same_padding(self, rng, kernel):
        img = rng.standard_normal((1, 16, 16)).astype(np.float32)
        flt = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt, Padding.SAME),
            conv2d_reference(img, flt, Padding.SAME),
            rtol=1e-2, atol=1e-3,
        )

    def test_channel_mismatch_rejected(self, rng, kernel):
        with pytest.raises(ShapeError):
            kernel.run(rng.standard_normal((2, 8, 8)),
                       rng.standard_normal((1, 3, 3, 3)))


class TestCostModel:
    def test_padded_filter_overhead(self, kernel):
        """The paper's complaint: filters padded to the image size."""
        p = ConvProblem.square(256, 3, channels=8, filters=16)
        assert kernel.padded_filter_bytes(p) > 100 * p.filter_bytes

    def test_flops_grow_slower_than_direct_for_big_k(self, kernel):
        p_small = ConvProblem.square(256, 3, channels=4, filters=4)
        p_big = ConvProblem.square(256, 7, channels=4, filters=4)
        fft_growth = kernel.flop_count(p_big) / kernel.flop_count(p_small)
        direct_growth = p_big.flops / p_small.flops
        assert fft_growth < direct_growth

    def test_loses_to_direct_for_small_filters_batch_one(self, kernel):
        """Paper Sec. 1: at batch 1 with small filters the filter
        transforms dominate and FFT convolution is not competitive."""
        from repro.core.general import GeneralCaseKernel

        p = ConvProblem.square(128, 3, channels=64, filters=128)
        assert kernel.gflops(p) < GeneralCaseKernel().gflops(p)
