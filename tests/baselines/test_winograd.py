"""Tests for Winograd F(2x2, 3x3) convolution."""

import numpy as np
import pytest

from repro.baselines.winograd import WinogradConvolution
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ConfigurationError


@pytest.fixture
def kernel():
    return WinogradConvolution()


class TestFunctional:
    def test_matches_reference(self, rng, kernel):
        img = rng.standard_normal((3, 18, 22)).astype(np.float32)
        flt = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_odd_output_extent(self, rng, kernel):
        # 15x15 output: the last 2x2 tile is clipped.
        img = rng.standard_normal((1, 17, 17)).astype(np.float32)
        flt = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_same_padding(self, rng, kernel):
        img = rng.standard_normal((2, 12, 12)).astype(np.float32)
        flt = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kernel.run(img, flt, Padding.SAME),
            conv2d_reference(img, flt, Padding.SAME),
            rtol=1e-3, atol=1e-3,
        )

    def test_rejects_non_3x3(self, rng, kernel):
        with pytest.raises(ConfigurationError):
            kernel.run(rng.standard_normal((1, 10, 10)),
                       rng.standard_normal((1, 1, 5, 5)))


class TestCostModel:
    def test_multiply_reduction_is_2_25(self, kernel):
        assert kernel.multiply_reduction() == pytest.approx(2.25)

    def test_filter_blowup_is_16_over_9(self, kernel):
        p = ConvProblem.square(64, 3, channels=4, filters=8)
        assert kernel.transformed_filter_bytes(p) == \
            pytest.approx(p.filter_bytes * 16 / 9)

    def test_flop_count_below_direct_for_deep_layers(self, kernel):
        p = ConvProblem.square(56, 3, channels=256, filters=256)
        assert kernel.flop_count(p) < p.flops

    def test_rejects_flop_count_for_non_3x3(self, kernel):
        with pytest.raises(ConfigurationError):
            kernel.flop_count(ConvProblem.square(64, 5, channels=4, filters=4))

    def test_beats_direct_on_3x3_deep_layers(self, kernel):
        """The paper's motivation for mentioning Winograd: on 3x3 it can
        be faster than any direct method (in effective direct-flops)."""
        from repro.core.general import GeneralCaseKernel

        p = ConvProblem.square(56, 3, channels=256, filters=256)
        assert kernel.gflops(p) > GeneralCaseKernel().gflops(p)


class TestF4x4:
    def test_matches_reference(self, rng):
        kern = WinogradConvolution(tile=4)
        img = rng.standard_normal((3, 20, 24)).astype(np.float32)
        flt = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-2, atol=1e-2,
        )

    def test_multiply_reduction_is_four(self):
        assert WinogradConvolution(tile=4).multiply_reduction() == \
            pytest.approx(4.0)

    def test_filter_blowup_is_36_over_9(self):
        kern = WinogradConvolution(tile=4)
        p = ConvProblem.square(64, 3, channels=4, filters=8)
        assert kern.transformed_filter_bytes(p) == \
            pytest.approx(p.filter_bytes * 36 / 9)

    def test_faster_than_f2x2_on_deep_layers(self):
        p = ConvProblem.square(56, 3, channels=256, filters=256)
        f2 = WinogradConvolution(tile=2).gflops(p)
        f4 = WinogradConvolution(tile=4).gflops(p)
        assert f4 > f2

    def test_invalid_tile_rejected(self):
        with pytest.raises(ConfigurationError):
            WinogradConvolution(tile=3)

    def test_odd_extents_clipped_correctly(self, rng):
        kern = WinogradConvolution(tile=4)
        img = rng.standard_normal((1, 13, 15)).astype(np.float32)
        flt = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-2, atol=1e-2,
        )
