"""Regression pins: the headline measured values, banded.

These tests exist to catch accidental drift in the calibrated model.
They intentionally use *wide* bands around the values recorded in
EXPERIMENTS.md — a legitimate model improvement may move a number, in
which case the pin (and EXPERIMENTS.md) should be updated deliberately,
in the same change.
"""

import pytest

from repro.baselines.gemm import (
    GemmShape,
    cublas_like_gemm,
    magma_fermi_gemm,
    magma_matched_gemm,
)
from repro.baselines.implicit_gemm import ImplicitGemmKernel
from repro.conv.tensors import ConvProblem
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel


class TestHeadlinePins:
    def test_special_3x3_throughput(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=32)
        assert SpecialCaseKernel().gflops(p) == pytest.approx(776, rel=0.10)

    def test_unmatched_penalty_pin(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=32)
        penalty = 1 - (SpecialCaseKernel(matched=False).gflops(p)
                       / SpecialCaseKernel().gflops(p))
        # Paper: 19%.  Recorded: 18.7%.
        assert penalty == pytest.approx(0.187, abs=0.04)

    def test_general_3x3_throughput(self):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        assert GeneralCaseKernel().gflops(p) == pytest.approx(2536, rel=0.10)

    def test_general_peak_fraction(self):
        p = ConvProblem.square(224, 3, channels=64, filters=128)
        peak_fraction = GeneralCaseKernel().gflops(p) / 4290.0
        # Recorded: ~63% (paper measured 47% on hardware).
        assert 0.5 < peak_fraction < 0.75

    def test_fig2_slowdown_pin(self):
        s = GemmShape.square(4096)
        ratio = magma_fermi_gemm().time_ms(s) / cublas_like_gemm().time_ms(s)
        assert ratio == pytest.approx(2.03, rel=0.15)

    def test_fig2_saving_pin(self):
        s = GemmShape.square(4096)
        saving = 1 - magma_matched_gemm().time_ms(s) / \
            magma_fermi_gemm().time_ms(s)
        assert saving == pytest.approx(0.44, abs=0.08)

    def test_small_image_parity_pin(self):
        p = ConvProblem.square(32, 3, channels=128, filters=128)
        ratio = GeneralCaseKernel().gflops(p) / ImplicitGemmKernel().gflops(p)
        # Recorded: 0.99 — the paper's "may be a little slower" point.
        assert ratio == pytest.approx(0.99, abs=0.12)

    def test_cudnn_like_general_throughput(self):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        assert ImplicitGemmKernel().gflops(p) == pytest.approx(2300, rel=0.12)
