"""Tests for serializable telemetry snapshots and cross-process merge."""

import json
import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import Registry
from repro.obs.snapshot import (
    SNAPSHOT_VERSION,
    merge_registry_snapshot,
    merge_tracer_snapshot,
    merge_worker_snapshot,
    registry_snapshot,
    tracer_snapshot,
    worker_snapshot,
)
from repro.obs.tracing import Tracer


def populated_registry():
    registry = Registry()
    requests = registry.counter("snap_requests_total", "requests",
                                labelnames=("backend",))
    requests.inc(3, backend="special")
    requests.inc(2.5, backend="general")
    registry.gauge("snap_queue_depth", "depth").set(7)
    lat = registry.histogram("snap_latency_seconds", "latency")
    for v in (0.001, 0.002, 0.004, 0.008):
        lat.observe(v)
    return registry


class TestRegistrySnapshot:
    def test_snapshot_is_plain_data(self):
        snap = registry_snapshot(populated_registry())
        assert snap["v"] == SNAPSHOT_VERSION
        json.dumps(snap)          # JSON-safe
        pickle.dumps(snap)        # pipe-safe

    def test_merge_into_empty_reproduces_counters(self):
        snap = registry_snapshot(populated_registry())
        merged = merge_registry_snapshot(snap, registry=Registry())
        counter = merged.get("snap_requests_total")
        assert counter.value(backend="special") == 3.0
        assert counter.value(backend="general") == 2.5
        assert merged.get("snap_queue_depth").value() == 7.0

    def test_counters_merge_by_summation(self):
        snap = registry_snapshot(populated_registry())
        target = populated_registry()
        merge_registry_snapshot(snap, registry=target)
        assert target.get("snap_requests_total").total() == 11.0

    def test_histogram_aggregates_merge_exactly(self):
        snap = registry_snapshot(populated_registry())
        target = populated_registry()
        merge_registry_snapshot(snap, registry=target)
        hist = target.get("snap_latency_seconds")
        assert hist.count() == 8
        assert hist.sum() == pytest.approx(2 * 0.015)
        series = hist.collect()["series"][0]["value"]
        assert series["min"] == 0.001
        assert series["max"] == 0.008

    def test_empty_series_merge_is_noop(self):
        registry = Registry()
        registry.counter("snap_zero_total", "z")
        registry.histogram("snap_empty_seconds", "e")
        merged = merge_registry_snapshot(
            registry_snapshot(registry), registry=Registry())
        assert merged.get("snap_zero_total").total() == 0.0
        assert merged.get("snap_empty_seconds").count() == 0

    def test_version_mismatch_rejected(self):
        with pytest.raises(ObservabilityError):
            merge_registry_snapshot({"v": 99, "metrics": []},
                                    registry=Registry())
        with pytest.raises(ObservabilityError):
            merge_registry_snapshot({"metrics": []}, registry=Registry())


class TestTracerSnapshot:
    def make_tracer(self):
        tracer = Tracer()
        with tracer.span("outer", category="test") as args:
            args["k"] = "v"
        tracer.add_span("device", "kernel", start_s=1.5, duration_s=0.25)
        return tracer

    def test_round_trip_preserves_spans(self):
        snap = tracer_snapshot(self.make_tracer())
        json.dumps(snap)
        merged = merge_tracer_snapshot(snap, tracer=Tracer())
        assert len(merged) == 2
        names = [s.name for s in merged.spans]
        assert names == ["outer", "device"]
        assert merged.spans[0].args["k"] == "v"

    def test_offset_shifts_wall_but_not_virtual(self):
        snap = tracer_snapshot(self.make_tracer())
        merged = merge_tracer_snapshot(snap, tracer=Tracer(), offset_s=10.0)
        wall = next(s for s in merged.spans if s.track == "wall")
        virtual = next(s for s in merged.spans if s.track == "virtual")
        assert wall.start_s >= 10.0
        assert virtual.start_s == 1.5

    def test_extra_args_stamped_on_every_span(self):
        snap = tracer_snapshot(self.make_tracer())
        merged = merge_tracer_snapshot(snap, tracer=Tracer(),
                                       extra_args={"shard": 3})
        assert all(s.args["shard"] == 3 for s in merged.spans)


class TestWorkerSnapshot:
    def test_combined_round_trip(self):
        registry = populated_registry()
        tracer = Tracer()
        with tracer.span("work", category="test"):
            pass
        snap = worker_snapshot(registry, tracer)
        json.dumps(snap)
        target_registry, target_tracer = Registry(), Tracer()
        merge_worker_snapshot(snap, registry=target_registry,
                              tracer=target_tracer)
        assert target_registry.get("snap_requests_total").total() == 5.5
        assert len(target_tracer) == 1
