"""End-to-end parity of the parallelized sweep paths.

The executor's headline guarantee: every sweep produces bit-identical
results for any ``jobs`` degree, and telemetry totals merge losslessly.
"""

import os
import time

import numpy as np
import pytest

from repro.bench.runner import compare_on_sweep
from repro.conv.tensors import ConvProblem
from repro.conv.workloads import special_case_sweep
from repro.core.dse import (
    enumerate_general_configs,
    explore_general,
    explore_special,
    reproduce_table1,
)
from repro.core.special import SpecialCaseKernel
from repro.baselines.im2col import Im2colKernel
from repro.gpu.arch import KEPLER_K40M
from repro.obs.metrics import get_registry, reset_registry
from repro.parallel import parallel_map, shutdown_pools
from repro.serve.dispatch import Dispatcher
from repro.serve.request import ConvRequest


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_registry()
    yield
    shutdown_pools()
    reset_registry()


def general_subset(n=48):
    return enumerate_general_configs(3, 2, KEPLER_K40M)[:n]


class TestDSEParity:
    def test_explore_special_identical_rankings(self):
        serial = explore_special(jobs=1)
        fanned = explore_special(jobs=2)
        assert serial == fanned  # dataclass equality: configs AND floats

    def test_explore_general_identical_rankings(self):
        configs = general_subset()
        serial = explore_general(3, configs=configs, jobs=1)
        fanned = explore_general(3, configs=configs, jobs=3)
        assert serial == fanned

    def test_candidate_counter_totals_match_serial(self):
        configs = general_subset()
        explore_general(3, configs=configs, jobs=1)
        serial_total = get_registry().get("dse_candidates_total").total()
        reset_registry()
        explore_general(3, configs=configs, jobs=2)
        fanned_total = get_registry().get("dse_candidates_total").total()
        assert fanned_total == serial_total == float(len(configs))

    def test_candidate_spans_arrive_from_workers(self):
        from repro.obs.tracing import get_tracer, reset_tracer

        configs = general_subset(12)
        reset_tracer()
        explore_general(3, configs=configs, jobs=2)
        spans = get_tracer().by_category("dse")
        assert len(spans) == len(configs)
        assert any("shard" in s.args for s in spans)


class TestTable1Parity:
    def test_reproduce_table1_identical_rows(self):
        # One filter size keeps the full-axis exploration affordable
        # while still exercising the fan-out/merge path end to end.
        serial = reproduce_table1(kernel_sizes=(3,), jobs=1)
        fanned = reproduce_table1(kernel_sizes=(3,), jobs=2)
        assert serial == fanned


class TestSweepParity:
    def test_compare_on_sweep_identical_rows(self):
        kernels = {
            "ours": SpecialCaseKernel(KEPLER_K40M),
            "cuDNN": Im2colKernel(KEPLER_K40M),
        }
        points = special_case_sweep(3)
        serial = compare_on_sweep(kernels, points, jobs=1)
        fanned = compare_on_sweep(kernels, points, jobs=2)
        assert serial == fanned

    def test_custom_lambda_metric_still_works(self):
        kernels = {"ours": SpecialCaseKernel(KEPLER_K40M)}
        points = special_case_sweep(3)[:3]
        rows = compare_on_sweep(
            kernels, points,
            metric=lambda kernel, problem: float(problem.width),
            jobs=2)
        assert [r.values["ours"] for r in rows] == [
            float(p.problem.width) for p in points]


class TestDispatchParity:
    def make_requests(self, problem, n=6):
        requests = []
        for i in range(n):
            image, filters = problem.random_instance(seed=i)
            requests.append(ConvRequest(req_id=i, problem=problem,
                                        image=image, filters=filters))
        return requests

    @pytest.mark.parametrize("executor", ["reference", "kernel"])
    def test_outputs_flags_seconds_identical(self, executor):
        problem = ConvProblem.square(32, 3, channels=8, filters=16)
        requests = self.make_requests(problem)
        serial_d = Dispatcher()
        plan = serial_d.plan(problem)
        out1, fell1, s1 = serial_d.execute(plan, requests, executor, jobs=1)
        fanned_d = Dispatcher(jobs=2)
        plan2 = fanned_d.plan(problem)
        out2, fell2, s2 = fanned_d.execute(plan2, requests, executor)
        assert fell1 == fell2
        assert s1 == s2
        for a, b in zip(out1, out2):
            assert np.array_equal(a, b)


@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="speedup needs at least 2 cores")
class TestSpeedup:
    def test_parallel_dse_sweep_is_faster_than_serial(self):
        configs = enumerate_general_configs(3, 2, KEPLER_K40M)
        # Warm the pool so fork cost doesn't count against the sweep.
        parallel_map(abs, [1, 2, 3, 4], jobs=2)
        start = time.perf_counter()
        serial = explore_general(3, configs=configs, jobs=1)
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        fanned = explore_general(3, configs=configs, jobs=2)
        fanned_s = time.perf_counter() - start
        assert serial == fanned
        assert fanned_s < serial_s
