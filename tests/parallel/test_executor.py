"""Tests for the sharded process-pool executor."""

import multiprocessing
import os
import time

import pytest

from repro.errors import ParallelError
from repro.obs.metrics import get_registry, reset_registry
from repro.parallel import (
    JOBS_ENV_VAR,
    ParallelFailure,
    parallel_map,
    resolve_jobs,
    shard,
    shutdown_pools,
)


def square(x):
    return x * x


def square_with_counter(x):
    get_registry().counter("executor_test_calls_total").inc()
    return x * x


def fail_on_negative(x):
    if x < 0:
        raise ValueError("negative input %d" % x)
    return x * x


def fail_in_worker_only(x):
    """Raises only inside a daemonic pool worker — the parent succeeds."""
    if multiprocessing.current_process().daemon:
        raise RuntimeError("worker-only failure")
    return x * x


def sleep_in_worker_only(x):
    """Sleeps only inside a pool worker, so timeouts don't slow the
    parent's serial fallback."""
    if multiprocessing.current_process().daemon:
        time.sleep(30.0)
    return x * x


def nested_map(x):
    """Calls parallel_map from inside a worker (must stay serial)."""
    return sum(parallel_map(square, range(x + 1), jobs=2))


@pytest.fixture(autouse=True)
def _fresh_pools_and_registry():
    reset_registry()
    yield
    shutdown_pools()
    reset_registry()


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == 1

    def test_env_var_selects_degree(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs() == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_auto_and_zero_mean_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        expected = os.cpu_count() or 1
        assert resolve_jobs("auto") == expected
        assert resolve_jobs(0) == expected

    def test_env_auto(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "auto")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_invalid_values_raise(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ParallelError):
            resolve_jobs()
        with pytest.raises(ParallelError):
            resolve_jobs(-2)
        with pytest.raises(ParallelError):
            resolve_jobs("x2")


class TestShard:
    def test_contiguous_and_order_preserving(self):
        items = list(range(10))
        shards = shard(items, 3)
        assert [x for chunk in shards for x in chunk] == items
        assert shards == [[0, 1, 2, 3], [4, 5, 6], [7, 8, 9]]

    def test_never_returns_empty_shards(self):
        assert shard([1, 2], 5) == [[1], [2]]
        assert shard([], 4) == []

    def test_near_equal_sizes(self):
        sizes = [len(chunk) for chunk in shard(list(range(23)), 4)]
        assert sum(sizes) == 23
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic(self):
        items = list(range(17))
        assert shard(items, 5) == shard(items, 5)

    def test_invalid_shard_count(self):
        with pytest.raises(ParallelError):
            shard([1], 0)


class TestParallelMap:
    def test_serial_matches_comprehension(self):
        items = list(range(13))
        assert parallel_map(square, items, jobs=1) == [x * x for x in items]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(37))
        expected = [x * x for x in items]
        assert parallel_map(square, items, jobs=2) == expected
        assert parallel_map(square, items, jobs=4) == expected

    def test_empty_and_singleton(self):
        assert parallel_map(square, [], jobs=4) == []
        assert parallel_map(square, [7], jobs=4) == [49]

    def test_unpicklable_fn_falls_back_to_serial(self):
        items = list(range(8))
        out = parallel_map(lambda x: x + 1, items, jobs=4)
        assert out == [x + 1 for x in items]

    def test_worker_counters_merge_to_serial_totals(self):
        n = 29
        parallel_map(square_with_counter, range(n), jobs=3)
        merged = get_registry().get("executor_test_calls_total").total()
        reset_registry()
        parallel_map(square_with_counter, range(n), jobs=1)
        serial = get_registry().get("executor_test_calls_total").total()
        assert merged == serial == float(n)

    def test_deterministic_error_surfaces_with_original_type(self):
        # The failing shard exhausts its retries in the pool, then the
        # serial fallback re-raises fn's own exception in-process.
        with pytest.raises(ValueError, match="negative input"):
            parallel_map(fail_on_negative, [1, 2, -3, 4], jobs=2,
                         retries=0, backoff_s=0.0)

    def test_worker_only_failure_degrades_to_parent(self):
        # Every pool attempt fails; the in-process fallback succeeds,
        # so the caller still gets the full result set.
        items = list(range(9))
        out = parallel_map(fail_in_worker_only, items, jobs=2,
                           retries=1, backoff_s=0.0)
        assert out == [x * x for x in items]

    def test_timeout_recovers_via_serial_fallback(self):
        items = list(range(6))
        start = time.perf_counter()
        out = parallel_map(sleep_in_worker_only, items, jobs=2,
                           timeout_s=0.5, retries=0, backoff_s=0.0)
        elapsed = time.perf_counter() - start
        assert out == [x * x for x in items]
        assert elapsed < 25.0  # far below the worker's 30 s sleep

    def test_nested_call_inside_worker_stays_serial(self):
        expected = [sum(y * y for y in range(x + 1)) for x in range(6)]
        assert parallel_map(nested_map, range(6), jobs=2) == expected

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ParallelError):
            parallel_map(square, [1, 2], jobs=2, retries=-1)
        with pytest.raises(ParallelError):
            parallel_map(square, [1, 2], jobs=2, timeout_s=0.0)


class TestStructuredFailures:
    def test_on_error_return_yields_placeholders_in_position(self):
        out = parallel_map(fail_on_negative, [1, -2, 3, -4], jobs=1,
                           on_error="return")
        assert out[0] == 1 and out[2] == 9
        assert isinstance(out[1], ParallelFailure)
        assert out[1].index == 1
        assert out[1].exc_type == "ValueError"
        assert "negative input -2" in out[1].error

    def test_parallel_indices_are_global_not_chunk_local(self):
        items = [1, 2, 3, -4, 5, -6, 7, 8]
        out = parallel_map(fail_on_negative, items, jobs=3,
                           retries=0, backoff_s=0.0, on_error="return")
        failed = [r.index for r in out if isinstance(r, ParallelFailure)]
        assert failed == [3, 5]
        assert [r for r in out if not isinstance(r, ParallelFailure)] == [
            1, 4, 9, 25, 49, 64]

    def test_on_error_validated(self):
        with pytest.raises(ParallelError, match="on_error"):
            parallel_map(square, [1], on_error="ignore")


class TestExecutorCounters:
    def counters(self):
        registry = get_registry()
        return tuple(
            registry.counter(name).total() for name in (
                "parallel_retries_total", "parallel_timeouts_total",
                "parallel_pool_restarts_total"))

    def test_clean_run_counts_nothing(self):
        parallel_map(square, range(8), jobs=2)
        assert self.counters() == (0.0, 0.0, 0.0)

    def test_worker_failures_count_retries(self):
        parallel_map(fail_in_worker_only, range(4), jobs=2,
                     retries=2, backoff_s=0.0)
        retries, timeouts, restarts = self.counters()
        assert retries == 8.0        # 4 chunks x 2 resubmissions each
        assert timeouts == 0.0 and restarts == 0.0

    def test_timeouts_count_and_restart_the_pool(self):
        parallel_map(sleep_in_worker_only, range(4), jobs=2,
                     timeout_s=0.2, retries=0, backoff_s=0.0)
        retries, timeouts, restarts = self.counters()
        assert timeouts >= 1.0
        assert restarts >= 1.0
