"""Tests for kernel configurations (paper Table 1, Secs. 3.1/4.1)."""

import pytest

from repro.core.config import (
    BEST_SPECIAL_CONFIG,
    TABLE1_CONFIGS,
    GeneralCaseConfig,
    SpecialCaseConfig,
)
from repro.errors import ConfigurationError
from repro.gpu.arch import KEPLER_K40M
from repro.gpu.occupancy import occupancy
from repro.gpu.simt import Dim3, LaunchConfig


class TestSpecialConfig:
    def test_paper_best_block(self):
        assert (BEST_SPECIAL_CONFIG.block_w, BEST_SPECIAL_CONFIG.block_h) == (256, 8)

    def test_threads_scale_with_vector_width(self):
        cfg = BEST_SPECIAL_CONFIG
        assert cfg.threads(1) == 256
        assert cfg.threads(2) == 128

    def test_smem_holds_k_rows(self):
        cfg = SpecialCaseConfig(block_w=64, block_h=4)
        assert cfg.smem_bytes(3, 2) == 3 * 66 * 4
        assert cfg.smem_row_floats(3, 2) == 66  # 64+2 is already even

    def test_smem_row_padded_to_vector(self):
        cfg = SpecialCaseConfig(block_w=64, block_h=4)
        # K=4 is hypothetical but exercises rounding: 64+3 -> 68.
        assert cfg.smem_row_floats(4, 2) == 68

    def test_register_window_grows_with_k_and_n(self):
        cfg = BEST_SPECIAL_CONFIG
        assert cfg.registers_per_thread(5, 2) > cfg.registers_per_thread(3, 2)
        assert cfg.registers_per_thread(3, 2) > cfg.registers_per_thread(3, 1)

    def test_validate_rejects_nondivisible_width(self):
        cfg = SpecialCaseConfig(block_w=10, block_h=4)
        with pytest.raises(ConfigurationError):
            cfg.validate(3, 4)

    def test_validate_rejects_partial_warp(self):
        cfg = SpecialCaseConfig(block_w=48, block_h=4)
        with pytest.raises(ConfigurationError):
            cfg.validate(3, 1)  # 48 threads is 1.5 warps


class TestTable1:
    def test_paper_values_verbatim(self):
        c3 = TABLE1_CONFIGS[3]
        assert (c3.w, c3.h, c3.ftb, c3.wt, c3.ft, c3.csh) == (32, 4, 64, 16, 4, 2)
        c5 = TABLE1_CONFIGS[5]
        assert (c5.w, c5.h, c5.ftb, c5.wt, c5.ft, c5.csh) == (32, 8, 32, 8, 8, 1)
        c7 = TABLE1_CONFIGS[7]
        assert (c7.w, c7.h, c7.ftb, c7.wt, c7.ft, c7.csh) == (64, 4, 32, 8, 8, 1)

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_all_table1_configs_valid_and_resident(self, k):
        cfg = TABLE1_CONFIGS[k]
        cfg.validate(k, 2)
        launch = LaunchConfig(
            grid=Dim3(100),
            block=Dim3(cfg.tx, cfg.ty),
            registers_per_thread=cfg.registers_per_thread(k, 2),
            smem_per_block=cfg.smem_bytes(k, 2),
        )
        occ = occupancy(KEPLER_K40M, launch)
        assert occ.blocks_per_sm >= 1

    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_thread_counts_are_whole_warps(self, k):
        cfg = TABLE1_CONFIGS[k]
        assert cfg.threads % 32 == 0
        assert cfg.threads == 128  # all three paper configs use 128 threads


class TestGeneralConfigConstraints:
    def test_derived_thread_layout(self):
        cfg = TABLE1_CONFIGS[3]
        assert (cfg.tx, cfg.ty) == (16, 8)

    def test_wt_must_stay_in_row(self):
        cfg = GeneralCaseConfig(w=32, h=4, ftb=64, wt=24, ft=4, csh=2)
        with pytest.raises(ConfigurationError):
            cfg.validate(3, 2)

    def test_ftb_divisible_by_ft(self):
        cfg = GeneralCaseConfig(w=32, h=4, ftb=60, wt=16, ft=8, csh=2)
        with pytest.raises(ConfigurationError):
            cfg.validate(3, 2)

    def test_vector_divisibility(self):
        cfg = GeneralCaseConfig(w=32, h=4, ftb=64, wt=15, ft=4, csh=2)
        with pytest.raises(ConfigurationError):
            cfg.validate(3, 2)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneralCaseConfig(w=32, h=0, ftb=64, wt=16, ft=4, csh=2)

    def test_filter_smem_includes_padding(self):
        cfg = TABLE1_CONFIGS[3]
        unpadded = cfg.csh * 9 * cfg.ftb
        assert cfg.smem_filter_floats(3, 2) == unpadded + cfg.csh * 9 * 2

    def test_smem_fits_kepler(self):
        for k, cfg in TABLE1_CONFIGS.items():
            assert cfg.smem_bytes(k, 2) < KEPLER_K40M.smem_per_block_max

    def test_registers_fit_isa_limit(self):
        for k, cfg in TABLE1_CONFIGS.items():
            assert cfg.registers_per_thread(k, 2) <= 255
