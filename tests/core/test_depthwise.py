"""Tests for the depthwise kernel (repro.core.depthwise).

Depthwise convolution is the special-case kernel applied once per
channel under a grid-Z-extended launch, so the contracts are: reference
parity across the generalized axes, a traced cost equal to the
per-group special-case cost scaled by the group count, and fast-sim
execution that survives the interpreted-oracle audit on both
bank-conflict policies.
"""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.core.depthwise import DepthwiseKernel
from repro.core.dse import best_config
from repro.core.special import SpecialCaseKernel
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.memory.banks import BankConflictPolicy

POLICIES = (BankConflictPolicy.WORD_MERGE, BankConflictPolicy.PAPER)

SWEEP = [
    ConvProblem.square(16, 3, channels=4, filters=4, groups=4),
    ConvProblem.square(20, 3, channels=3, filters=6, groups=3,
                       padding=Padding.SAME),
    ConvProblem.square(21, 5, channels=2, filters=2, groups=2),
    ConvProblem.square(20, 3, channels=4, filters=4, groups=4, stride=2),
    ConvProblem.square(17, 3, channels=2, filters=4, groups=2, dilation=2),
    ConvProblem.square(16, 3, channels=4, filters=4, groups=4,
                       layout=Layout.NHWC),
]


def _ids(problems):
    return ["c%d_f%d_k%d_%s_s%d_d%d_%s"
            % (p.channels, p.filters, p.kernel_size, p.padding.value,
               p.stride, p.dilation, p.layout.value)
            for p in problems]


class TestFunctionalParity:
    @pytest.mark.parametrize("problem", SWEEP, ids=_ids(SWEEP))
    def test_matches_reference(self, problem):
        image, filters = problem.random_instance(seed=2)
        kernel = DepthwiseKernel()
        out = kernel.run(image, filters, problem=problem)
        reference = conv2d_reference(image, filters, problem=problem)
        assert out.shape == problem.output_shape
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_inference_path_without_problem(self):
        problem = ConvProblem.square(16, 3, channels=3, filters=3, groups=3)
        image, filters = problem.random_instance(seed=4)
        out = DepthwiseKernel().run(image, filters)
        np.testing.assert_allclose(
            out, conv2d_reference(image, filters, problem=problem),
            rtol=1e-4, atol=1e-5)

    def test_rejects_non_depthwise_grouping(self):
        problem = ConvProblem.square(16, 3, channels=4, filters=4, groups=2)
        image, filters = problem.random_instance(seed=0)
        with pytest.raises(ConfigurationError) as excinfo:
            DepthwiseKernel().run(image, filters, problem=problem)
        assert "groups == channels" in str(excinfo.value)
        assert "groups=2" in str(excinfo.value)

    def test_rejects_malformed_filters(self):
        with pytest.raises(ShapeError):
            DepthwiseKernel().run(
                np.zeros((4, 16, 16), dtype=np.float32),
                np.zeros((4, 2, 3, 3), dtype=np.float32))


class TestCostModel:
    def test_cost_is_group_cost_scaled(self):
        problem = ConvProblem.square(16, 3, channels=4, filters=8, groups=4)
        kernel = DepthwiseKernel()
        cost = kernel.cost(problem)
        group = SpecialCaseKernel().cost(
            DepthwiseKernel.group_problem(problem.as_valid()))
        assert cost.launch.grid.z == 4
        assert cost.ledger.flops == pytest.approx(4 * group.ledger.flops)
        assert cost.ledger.gmem_read_transactions == pytest.approx(
            4 * group.ledger.gmem_read_transactions)
        assert cost.ledger.smem_cycles == pytest.approx(
            4 * group.ledger.smem_cycles)

    def test_strided_cost_still_traces(self):
        problem = ConvProblem.square(20, 3, channels=3, filters=3,
                                     groups=3, stride=2)
        cost = DepthwiseKernel().cost(problem)
        assert cost.launch.grid.z == 3
        # Executed flops are block-granular (padded tiles run in full),
        # so they bound the nominal operation count from above.
        assert cost.ledger.flops >= 2 * problem.flops

    def test_predict_and_gflops(self):
        problem = ConvProblem.square(16, 3, channels=2, filters=2, groups=2)
        kernel = DepthwiseKernel()
        breakdown = kernel.predict(problem)
        assert breakdown.total > 0
        assert kernel.gflops(problem) > 0


class TestFastsimAudit:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.value)
    def test_run_traced_survives_oracle_audit(self, policy):
        kernel = DepthwiseKernel(bank_policy=policy)
        cfg = kernel.config
        k = 3
        rng = np.random.default_rng(17)
        image = rng.standard_normal(
            (3, cfg.block_h + k - 1, cfg.block_w + k - 1)).astype(np.float32)
        filters = rng.standard_normal((3, 1, k, k)).astype(np.float32)
        out, cost = kernel.run_traced(image, filters, audit=True)
        problem = ConvProblem(
            height=image.shape[1], width=image.shape[2], channels=3,
            filters=3, kernel_size=k, groups=3)
        np.testing.assert_allclose(
            out, conv2d_reference(image, filters, problem=problem),
            rtol=1e-4, atol=1e-4)
        assert cost.launch.grid.z == 3


class TestDseIntegration:
    def test_best_config_selects_depthwise_case(self):
        problem = ConvProblem.square(24, 3, channels=4, filters=4, groups=4)
        ranked = best_config(problem)
        # The depthwise search tunes the C = 1 group problem through the
        # special-case explorer, so the winner is a special-case config.
        assert ranked.config.block_w > 0 and ranked.config.block_h > 0
        assert ranked.gflops > 0

    def test_unknown_case_rejected(self):
        problem = ConvProblem.square(24, 3, channels=4, filters=4)
        with pytest.raises(ConfigurationError):
            best_config(problem, case="grouped")
