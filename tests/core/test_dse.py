"""Tests for the design-space explorer (paper Sec. 5 / Table 1)."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.core.config import TABLE1_CONFIGS, SpecialCaseConfig
from repro.core.dse import (
    best_config,
    default_general_problem,
    enumerate_general_configs,
    enumerate_special_configs,
    explore_general,
    explore_special,
    reproduce_table1,
)
from repro.errors import ConfigurationError
from repro.gpu.arch import KEPLER_K40M


class TestEnumeration:
    def test_special_grid_size(self):
        assert len(enumerate_special_configs()) == 16

    def test_general_survivors_satisfy_constraints(self):
        configs = enumerate_general_configs(3, 2, KEPLER_K40M)
        assert len(configs) > 100
        for cfg in configs[:50]:
            cfg.validate(3, 2)
            assert cfg.smem_bytes(3, 2) <= KEPLER_K40M.smem_per_block_max

    def test_paper_table1_configs_survive_enumeration(self):
        for k in (3, 5, 7):
            configs = enumerate_general_configs(k, 2, KEPLER_K40M)
            assert TABLE1_CONFIGS[k] in configs

    def test_larger_k_prunes_more(self):
        n3 = len(enumerate_general_configs(3, 2, KEPLER_K40M))
        n7 = len(enumerate_general_configs(7, 2, KEPLER_K40M))
        assert n7 <= n3


class TestSpecialExploration:
    def test_ranked_descending(self):
        ranked = explore_special()
        gflops = [r.gflops for r in ranked]
        assert gflops == sorted(gflops, reverse=True)

    def test_paper_block_near_top(self):
        """The paper found W=256, H=8; our model must agree it is
        close to the best explored configuration (the landscape is
        flat; a 10% band allows for the model/hardware differences)."""
        ranked = explore_special()
        best = ranked[0].gflops
        paper = next(
            r for r in ranked
            if r.config == SpecialCaseConfig(block_w=256, block_h=8)
        )
        assert paper.gflops >= 0.90 * best


class TestGeneralExploration:
    def test_explore_subset_ranks(self):
        configs = enumerate_general_configs(3, 2, KEPLER_K40M)[:40]
        ranked = explore_general(3, configs=configs)
        assert ranked
        assert ranked[0].gflops >= ranked[-1].gflops

    def test_paper_config_close_to_explored_best(self):
        """Table 1 reproduction: the paper's config must be competitive
        (within 20%) with our model's best — the models differ, exact
        agreement is not expected."""
        rows = reproduce_table1(kernel_sizes=(3,))
        row = rows[0]
        assert row.paper_gflops >= 0.8 * row.ours_gflops

    def test_custom_problem(self):
        p = ConvProblem.square(64, 3, channels=32, filters=64)
        configs = enumerate_general_configs(3, 2, KEPLER_K40M)[:20]
        ranked = explore_general(3, problem=p, configs=configs)
        assert all(r.gflops > 0 for r in ranked)

    def test_default_problem_shape(self):
        p = default_general_problem(5)
        assert p.kernel_size == 5 and p.channels == 64


class TestBestConfig:
    def test_single_channel_selects_special_case(self):
        from repro.core.config import SpecialCaseConfig as SCC

        p = ConvProblem.square(64, 3, channels=1, filters=8)
        ranked = best_config(p)
        assert isinstance(ranked.config, SCC)

    def test_multi_channel_selects_general_case(self):
        from repro.core.config import GeneralCaseConfig as GCC

        p = ConvProblem.square(32, 3, channels=8, filters=16)
        ranked = best_config(p)
        assert isinstance(ranked.config, GCC)
        assert ranked.gflops > 0

    def test_case_can_be_forced(self):
        from repro.core.config import GeneralCaseConfig as GCC

        p = ConvProblem.square(64, 3, channels=1, filters=8)
        ranked = best_config(p, case="general")
        assert isinstance(ranked.config, GCC)

    def test_matches_explored_best(self):
        p = ConvProblem.square(64, 3, channels=1, filters=8)
        assert best_config(p).config == explore_special(
            KEPLER_K40M, problem=p)[0].config

    def test_unknown_case_rejected(self):
        p = ConvProblem.square(32, 3, channels=2, filters=4)
        with pytest.raises(ConfigurationError):
            best_config(p, case="winograd")

    def test_special_case_requires_single_channel(self):
        p = ConvProblem.square(32, 3, channels=4, filters=4)
        with pytest.raises(ConfigurationError):
            best_config(p, case="special")

    def test_quick_palette_is_fast_and_valid(self):
        import time

        p = ConvProblem.square(48, 5, channels=4, filters=8)
        start = time.monotonic()
        ranked = best_config(p)
        assert time.monotonic() - start < 2.0
        ranked.config.validate(p.kernel_size, 2)
