"""Tests for the Sec. 6 extensions: short-data-type kernels and the
adaptive configuration selector."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_single_channel
from repro.conv.tensors import ConvProblem
from repro.core.bankwidth import DataType
from repro.core.config import TABLE1_CONFIGS
from repro.core.general import SMALL_IMAGE_CONFIGS, GeneralCaseKernel
from repro.core.special import SpecialCaseKernel
from repro.gpu.arch import KEPLER_K40M, MAXWELL_GM204


class TestShortDtypeKernels:
    def test_vector_width_by_dtype(self):
        assert SpecialCaseKernel(dtype=DataType.FLOAT).n == 2
        assert SpecialCaseKernel(dtype=DataType.HALF).n == 4
        assert SpecialCaseKernel(dtype=DataType.CHAR).n == 8
        assert SpecialCaseKernel(MAXWELL_GM204, dtype=DataType.HALF).n == 2

    def test_functional_execution_unchanged(self, rng):
        # dtype parameterizes the cost model; results stay float32-exact.
        img = rng.standard_normal((20, 260)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        out = SpecialCaseKernel(dtype=DataType.HALF).run(img, flt)
        np.testing.assert_allclose(out, conv2d_single_channel(img, flt),
                                   rtol=1e-4, atol=1e-4)

    def test_half_halves_dram_traffic(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=8)
        f32 = SpecialCaseKernel(dtype=DataType.FLOAT).cost(p).ledger
        f16 = SpecialCaseKernel(dtype=DataType.HALF).cost(p).ledger
        ratio = f16.gmem_read_bytes_moved / f32.gmem_read_bytes_moved
        assert ratio == pytest.approx(0.5, rel=0.1)

    def test_half_conv_faster_when_memory_bound(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=8)
        f32 = SpecialCaseKernel(dtype=DataType.FLOAT).gflops(p)
        f16 = SpecialCaseKernel(dtype=DataType.HALF).gflops(p)
        assert f16 > 1.3 * f32

    def test_unmatched_penalty_grows_with_mismatch(self):
        """Sec. 6's point: the model matters MORE for short dtypes."""
        p = ConvProblem.square(2048, 3, channels=1, filters=32)

        def penalty(dtype):
            m = SpecialCaseKernel(dtype=dtype).gflops(p)
            u = SpecialCaseKernel(dtype=dtype, matched=False).gflops(p)
            return 1 - u / m

        assert penalty(DataType.CHAR) > penalty(DataType.HALF) > \
            penalty(DataType.FLOAT) > 0

    def test_half_benefits_maxwell_too(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=32)
        m = SpecialCaseKernel(MAXWELL_GM204, dtype=DataType.HALF).gflops(p)
        u = SpecialCaseKernel(MAXWELL_GM204, dtype=DataType.HALF,
                              matched=False).gflops(p)
        assert m > u

    def test_general_kernel_accepts_dtype(self, rng):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        half = GeneralCaseKernel(dtype=DataType.HALF)
        assert half.n == 4
        assert half.gflops(p) > 0
        img = rng.standard_normal((2, 12, 16)).astype(np.float32)
        flt = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        from repro.conv.reference import conv2d_reference
        from repro.core.config import GeneralCaseConfig

        cfg = GeneralCaseConfig(w=16, h=8, ftb=16, wt=8, ft=4, csh=2)
        kern = GeneralCaseKernel(config=cfg, dtype=DataType.HALF)
        np.testing.assert_allclose(kern.run(img, flt),
                                   conv2d_reference(img, flt),
                                   rtol=1e-3, atol=1e-3)


class TestAdaptiveConfig:
    def test_fixed_table1_for_large_images(self):
        kern = GeneralCaseKernel(auto_config=True)
        p = ConvProblem.square(224, 3, channels=64, filters=128)
        # On big images a wide tile should win — Table 1 or similar width.
        assert kern.select_config(p).w >= 16

    def test_narrow_config_chosen_for_tiny_images(self):
        kern = GeneralCaseKernel(auto_config=True)
        p = ConvProblem.square(32, 7, channels=256, filters=256)
        cfg = kern.select_config(p)
        assert cfg.w < TABLE1_CONFIGS[7].w

    def test_adaptive_never_worse_than_fixed(self):
        fixed = GeneralCaseKernel()
        adaptive = GeneralCaseKernel(auto_config=True)
        for n, c, f, k in ((32, 128, 128, 3), (32, 256, 256, 7),
                           (64, 128, 128, 5), (128, 64, 128, 3)):
            p = ConvProblem.square(n, k, channels=c, filters=f)
            assert adaptive.gflops(p) >= 0.999 * fixed.gflops(p)

    def test_adaptive_fixes_small_image_losses(self):
        """The paper's 32x32 caveat disappears with per-problem tiles."""
        from repro.baselines.implicit_gemm import ImplicitGemmKernel

        cudnn = ImplicitGemmKernel()
        adaptive = GeneralCaseKernel(auto_config=True)
        p = ConvProblem.square(32, 7, channels=256, filters=256)
        assert adaptive.gflops(p) > 0.9 * cudnn.gflops(p)

    def test_adaptive_functional_still_correct(self, rng):
        img = rng.standard_normal((3, 20, 20)).astype(np.float32)
        flt = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        from repro.conv.reference import conv2d_reference

        kern = GeneralCaseKernel(auto_config=True)
        np.testing.assert_allclose(kern.run(img, flt),
                                   conv2d_reference(img, flt),
                                   rtol=1e-3, atol=1e-3)

    def test_palette_configs_all_valid(self):
        for cfg in SMALL_IMAGE_CONFIGS:
            cfg.validate(3, 2, KEPLER_K40M.warp_size)

    def test_explicit_config_overrides_auto(self):
        cfg = SMALL_IMAGE_CONFIGS[0]
        kern = GeneralCaseKernel(config=cfg, auto_config=True)
        p = ConvProblem.square(224, 3, channels=64, filters=128)
        assert kern.config_for(p) == cfg
