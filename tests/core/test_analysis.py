"""Tests for the communication analysis (paper Secs. 2.2/3.2/4.2)."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.core.analysis import (
    audit_general_kernel,
    audit_special_kernel,
    gm_lower_bound_bytes,
    gm_traffic_ratio_vs_gemm,
    pixel_reuse_bound,
    sm_image_traffic_ratio,
    special_gm_read_overhead,
)
from repro.core.config import BEST_SPECIAL_CONFIG, TABLE1_CONFIGS
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel


class TestClosedForms:
    def test_pixel_reuse_is_kkf(self):
        p = ConvProblem.square(64, 3, filters=10)
        assert pixel_reuse_bound(p) == 90

    def test_gm_lower_bound(self):
        p = ConvProblem.square(16, 3, channels=2, filters=4)
        assert gm_lower_bound_bytes(p) == (
            p.image_bytes + p.filter_bytes + p.output_bytes
        )

    def test_sm_traffic_factor_paper_values(self):
        # K=3 with WT=16: (16+2)/(16*3) = 0.375.
        assert sm_image_traffic_ratio(TABLE1_CONFIGS[3], 3) == pytest.approx(0.375)
        # K=5 with WT=8: 12/40 = 0.3.
        assert sm_image_traffic_ratio(TABLE1_CONFIGS[5], 5) == pytest.approx(0.3)

    def test_gm_ratio_is_one_over_k(self):
        assert gm_traffic_ratio_vs_gemm(5) == pytest.approx(0.2)

    def test_special_overhead_scale_invariant(self):
        # The halo fraction is per-block, so it does not depend on the
        # image size once blocks tile the output.
        small = special_gm_read_overhead(
            ConvProblem.square(256, 3), BEST_SPECIAL_CONFIG)
        large = special_gm_read_overhead(
            ConvProblem.square(4096, 3), BEST_SPECIAL_CONFIG)
        assert large == pytest.approx(small, rel=0.02)
        assert small > 1.0


class TestSpecialAudit:
    def test_traced_traffic_matches_halo_model(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=16)
        audit = audit_special_kernel(SpecialCaseKernel(), p)
        assert audit.matches_model
        assert audit.near_optimal
        assert audit.conflict_free

    def test_overhead_above_one(self):
        p = ConvProblem.square(1024, 5, channels=1, filters=8)
        audit = audit_special_kernel(SpecialCaseKernel(), p)
        assert audit.overhead >= 1.0

    def test_k1_is_exactly_one_pass(self):
        p = ConvProblem.square(2048, 1, channels=1, filters=8)
        audit = audit_special_kernel(SpecialCaseKernel(), p)
        assert audit.overhead == pytest.approx(1.0, rel=0.05)


class TestGeneralAudit:
    def test_traced_traffic_matches_decomposition_model(self):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        audit = audit_general_kernel(GeneralCaseKernel(), p)
        assert audit.matches_model
        assert audit.conflict_free

    def test_overhead_reported_relative_to_unique_bytes(self):
        p = ConvProblem.square(128, 5, channels=64, filters=128)
        audit = audit_general_kernel(GeneralCaseKernel(), p)
        assert audit.gm_lower_bound == p.image_bytes + p.filter_bytes
        assert audit.overhead > 1.0
