"""Tests for the special-case kernel (paper Sec. 3, Algorithm 1)."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_single_channel
from repro.conv.tensors import ConvProblem, Padding
from repro.core.config import SpecialCaseConfig
from repro.core.special import SpecialCaseKernel
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M


@pytest.fixture
def kernel():
    return SpecialCaseKernel()


# Small block so functional tests exercise multiple blocks quickly.
SMALL = SpecialCaseConfig(block_w=64, block_h=4)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 5])
    @pytest.mark.parametrize("f", [1, 3])
    def test_matches_reference_valid(self, rng, k, f):
        kern = SpecialCaseKernel(config=SMALL)
        img = rng.standard_normal((30, 150)).astype(np.float32)
        flt = rng.standard_normal((f, k, k)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_single_channel(img, flt),
            rtol=1e-4, atol=1e-4,
        )

    def test_matches_reference_same_padding(self, rng):
        kern = SpecialCaseKernel(config=SMALL)
        img = rng.standard_normal((33, 70)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt, padding=Padding.SAME),
            conv2d_single_channel(img, flt, Padding.SAME),
            rtol=1e-4, atol=1e-4,
        )

    def test_unmatched_variant_same_results(self, rng):
        img = rng.standard_normal((20, 80)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        matched = SpecialCaseKernel(config=SMALL).run(img, flt)
        unmatched = SpecialCaseKernel(config=SMALL, matched=False).run(img, flt)
        np.testing.assert_allclose(matched, unmatched, rtol=1e-5)

    def test_image_smaller_than_block(self, rng):
        kern = SpecialCaseKernel(config=SMALL)
        img = rng.standard_normal((10, 12)).astype(np.float32)
        flt = rng.standard_normal((1, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_single_channel(img, flt),
            rtol=1e-4, atol=1e-4,
        )

    def test_accepts_chw_and_fckk_shapes(self, rng):
        kern = SpecialCaseKernel(config=SMALL)
        img = rng.standard_normal((1, 16, 64)).astype(np.float32)
        flt = rng.standard_normal((2, 1, 3, 3)).astype(np.float32)
        out = kern.run(img, flt)
        assert out.shape == (2, 14, 62)

    def test_rejects_multichannel(self, rng):
        kern = SpecialCaseKernel(config=SMALL)
        with pytest.raises(ShapeError):
            kern.run(rng.standard_normal((2, 16, 64)), np.ones((3, 3)))

    def test_rejects_nonsquare_filter(self, rng):
        kern = SpecialCaseKernel(config=SMALL)
        with pytest.raises(ShapeError):
            kern.run(rng.standard_normal((16, 64)), np.ones((2, 3, 5)))


class TestLaunchAndResources:
    def test_vector_width_follows_architecture(self):
        assert SpecialCaseKernel(KEPLER_K40M).n == 2
        assert SpecialCaseKernel(FERMI_M2090).n == 1
        assert SpecialCaseKernel(KEPLER_K40M, matched=False).n == 1

    def test_launch_grid_covers_output(self):
        kern = SpecialCaseKernel()
        p = ConvProblem.square(1024, 3, channels=1, filters=4)
        lc = kern.launch_config(p)
        assert lc.grid.x * 256 >= p.out_width
        assert lc.grid.y * 8 >= p.out_height
        assert lc.threads_per_block == 128  # W/n = 256/2

    def test_constant_memory_limit_enforced(self):
        kern = SpecialCaseKernel()
        too_many = ConvProblem.square(64, 5, channels=1, filters=1024)
        with pytest.raises(ConfigurationError):
            kern.launch_config(too_many)

    def test_rejects_multichannel_problem(self):
        kern = SpecialCaseKernel()
        with pytest.raises(ConfigurationError):
            kern.cost(ConvProblem.square(64, 3, channels=2, filters=1))


class TestTracedCost:
    def test_conflict_free_shared_memory(self, kernel):
        p = ConvProblem.square(1024, 3, channels=1, filters=8)
        led = kernel.cost(p).ledger
        assert led.smem_conflict_overhead == pytest.approx(1.0)

    def test_coalesced_global_reads(self, kernel):
        p = ConvProblem.square(1024, 3, channels=1, filters=8)
        led = kernel.cost(p).ledger
        assert led.gmem_read_efficiency > 0.9

    def test_constant_broadcasts_only(self, kernel):
        p = ConvProblem.square(1024, 3, channels=1, filters=8)
        led = kernel.cost(p).ledger
        # Every cmem request is a single broadcast.
        assert led.cmem_cycles == pytest.approx(led.cmem_requests)

    def test_flops_cover_nominal_work(self, kernel):
        p = ConvProblem.square(1024, 3, channels=1, filters=8)
        assert kernel.cost(p).flops >= p.flops

    def test_gm_reads_near_one_pass(self, kernel):
        p = ConvProblem.square(2048, 3, channels=1, filters=8)
        led = kernel.cost(p).ledger
        assert led.gmem_read_bytes_moved < 1.5 * p.image_bytes

    def test_prefetch_flag_set(self, kernel):
        p = ConvProblem.square(512, 3, channels=1, filters=4)
        assert kernel.cost(p).software_prefetch


class TestPerformanceShape:
    def test_unmatched_slower(self):
        p = ConvProblem.square(2048, 3, channels=1, filters=32)
        matched = SpecialCaseKernel().gflops(p)
        unmatched = SpecialCaseKernel(matched=False).gflops(p)
        # Paper Fig. 7b: ~19% penalty.
        assert unmatched < matched
        assert 0.70 < unmatched / matched < 0.95

    def test_f1_low_overlap_regime(self):
        kern = SpecialCaseKernel()
        low = kern.gflops(ConvProblem.square(2048, 3, channels=1, filters=1))
        high = kern.gflops(ConvProblem.square(2048, 3, channels=1, filters=32))
        assert low < high / 2  # paper: performance is lower when F=1

    def test_larger_filters_higher_gflops(self):
        kern = SpecialCaseKernel()
        k3 = kern.gflops(ConvProblem.square(2048, 3, channels=1, filters=16))
        k5 = kern.gflops(ConvProblem.square(2048, 5, channels=1, filters=16))
        assert k5 > k3  # more arithmetic per loaded byte

    def test_predict_returns_breakdown(self, kernel):
        p = ConvProblem.square(512, 3, channels=1, filters=4)
        tb = kernel.predict(p)
        assert tb.total > 0
        assert tb.bound_by in ("compute", "gmem", "l2", "smem", "cmem")
