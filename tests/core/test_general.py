"""Tests for the general-case kernel (paper Sec. 4, Algorithm 2)."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding
from repro.core.config import TABLE1_CONFIGS, GeneralCaseConfig
from repro.core.general import GeneralCaseKernel, default_config_for
from repro.errors import ShapeError
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M

# A small configuration (64 threads = 2 warps) so functional tests cross
# block and filter-group boundaries quickly.
SMALL = GeneralCaseConfig(w=16, h=8, ftb=16, wt=8, ft=4, csh=2)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_reference(self, rng, k):
        kern = GeneralCaseKernel(config=SMALL)
        img = rng.standard_normal((5, 20, 36)).astype(np.float32)
        flt = rng.standard_normal((10, 5, k, k)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_same_padding(self, rng):
        kern = GeneralCaseKernel(config=SMALL)
        img = rng.standard_normal((3, 18, 20)).astype(np.float32)
        flt = rng.standard_normal((6, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt, padding=Padding.SAME),
            conv2d_reference(img, flt, Padding.SAME),
            rtol=1e-3, atol=1e-3,
        )

    def test_filters_not_multiple_of_ftb(self, rng):
        kern = GeneralCaseKernel(config=SMALL)
        img = rng.standard_normal((2, 12, 16)).astype(np.float32)
        flt = rng.standard_normal((21, 2, 3, 3)).astype(np.float32)  # 21 > FTB=16
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_channels_not_multiple_of_csh(self, rng):
        kern = GeneralCaseKernel(config=SMALL)  # CSH=2
        img = rng.standard_normal((3, 12, 16)).astype(np.float32)
        flt = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_table1_config_functional(self, rng):
        kern = GeneralCaseKernel()  # Table 1 config for K=3
        img = rng.standard_normal((4, 36, 36)).astype(np.float32)
        flt = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            kern.run(img, flt), conv2d_reference(img, flt),
            rtol=1e-3, atol=1e-3,
        )

    def test_channel_mismatch_rejected(self, rng):
        kern = GeneralCaseKernel(config=SMALL)
        with pytest.raises(ShapeError):
            kern.run(rng.standard_normal((2, 12, 16)),
                     rng.standard_normal((4, 3, 3, 3)))

    def test_nonsquare_filter_rejected(self, rng):
        kern = GeneralCaseKernel(config=SMALL)
        with pytest.raises(ShapeError):
            kern.run(rng.standard_normal((2, 12, 16)),
                     rng.standard_normal((4, 2, 3, 5)))


class TestConfigSelection:
    def test_table1_used_for_known_sizes(self):
        kern = GeneralCaseKernel()
        for k in (3, 5, 7):
            p = ConvProblem.square(64, k, channels=8, filters=32)
            assert kern.config_for(p) == TABLE1_CONFIGS[k]

    def test_fallback_for_other_sizes(self):
        assert default_config_for(9, 2).validate(9, 2) is None

    def test_explicit_config_wins(self):
        kern = GeneralCaseKernel(config=SMALL)
        p = ConvProblem.square(64, 3, channels=8, filters=32)
        assert kern.config_for(p) == SMALL

    def test_vector_width_by_architecture(self):
        assert GeneralCaseKernel(KEPLER_K40M).n == 2
        assert GeneralCaseKernel(FERMI_M2090).n == 1


class TestLaunch:
    def test_grid_dimensions(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(130, 3, channels=16, filters=128)
        lc = kern.launch_config(p)
        assert lc.grid.x == 2          # ceil(128 / FTB=64)
        assert lc.block.count == 128   # TX*TY for the Table-1 K=3 config

    def test_threads_are_whole_warps(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(64, 5, channels=8, filters=64)
        assert kern.launch_config(p).threads_per_block % 32 == 0


class TestTracedCost:
    def test_conflict_free_vectorized_reads(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        led = kern.cost(p).ledger
        # The transposed filter store is scalar but everything is
        # conflict-free under the hardware policy.
        assert led.smem_conflict_overhead == pytest.approx(1.0)

    def test_writeback_priced_but_small(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        led = kern.cost(p).ledger
        assert led.gmem_write_bytes_moved > p.output_bytes  # uncoalesced
        assert led.gmem_write_bytes_moved < 4 * p.output_bytes

    def test_flops_cover_nominal(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        assert kern.cost(p).flops >= p.flops

    def test_sm_traffic_reduction_vs_unblocked(self):
        """Sec. 4.2: image SM reads ~ (WT+K-1)/(WT*K) of one-per-tap."""
        kern = GeneralCaseKernel()
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        led = kern.cost(p).ledger
        cfg = kern.config_for(p)
        img_reads = led.sites["sm.load_image_row[smem.read]"].request_bytes
        # One-per-tap traffic: every FMA round rereads WT pixels.
        per_tap = led.flops / 2 / cfg.ft * 4  # bytes if WT*K*K reads/thread
        assert img_reads < 0.6 * per_tap


class TestPerformanceShape:
    def test_unmatched_slower(self):
        p = ConvProblem.square(128, 3, channels=64, filters=128)
        matched = GeneralCaseKernel().gflops(p)
        unmatched = GeneralCaseKernel(matched=False).gflops(p)
        assert unmatched < matched

    def test_performance_grows_with_channels(self):
        kern = GeneralCaseKernel()
        small = kern.gflops(ConvProblem.square(64, 3, channels=16, filters=64))
        big = kern.gflops(ConvProblem.square(64, 3, channels=256, filters=64))
        assert big > small

    def test_peak_below_machine_peak(self):
        kern = GeneralCaseKernel()
        p = ConvProblem.square(224, 3, channels=256, filters=256)
        gf = kern.gflops(p)
        assert gf < KEPLER_K40M.peak_sp_gflops
        assert gf > 1000  # but solidly in the TFlop/s range
