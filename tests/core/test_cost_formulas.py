"""Hand-derived traffic formulas for the analytic cost models.

Every count below is computed from the paper's algorithm descriptions
with pencil and paper for one small configuration, then asserted
against the site ledger — independent of both the analytic tracer's
internals and the interpreter audit.
"""

import math

import pytest

from repro.conv.tensors import ConvProblem
from repro.core.config import GeneralCaseConfig, SpecialCaseConfig
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel


class TestSpecialCaseCounts:
    """Config W=64, H=4, n=2; problem 10x130 (out 8x128), K=3, F=2.

    Geometry: 2x2 = 4 blocks; 32 threads = 1 warp per block; each block
    sweeps 4 output rows over a 6-row, 66-column tile.
    """

    CFG = SpecialCaseConfig(block_w=64, block_h=4)
    PROBLEM = ConvProblem(height=10, width=130, channels=1, filters=2,
                          kernel_size=3)

    @pytest.fixture
    def ledger(self):
        return SpecialCaseKernel(config=self.CFG).cost(self.PROBLEM).ledger

    @pytest.fixture
    def sites(self, ledger):
        return ledger.sites

    def test_row_loads(self, sites):
        # (H + K - 1) = 6 rows per block, 1 warp each, 4 blocks.
        assert sites["gm.load_row[gmem.read]"].executions == 6 * 4

    def test_halo_loads(self, sites):
        # ceil((K-1)/n) = 1 halo unit: one extra request per row.
        assert sites["gm.load_row_halo[gmem.read]"].executions == 6 * 4

    def test_smem_stores_mirror_loads(self, sites):
        assert sites["sm.store_row[smem.write]"].executions == 6 * 4
        assert sites["sm.store_row_halo[smem.write]"].executions == 6 * 4

    def test_window_loads(self, sites):
        # Each thread reads K+n-1 = 4 pixels = 2 float2 units per staged
        # row; rows staged into registers: (K-1) initial + H latest = 6.
        assert sites["sm.load_window[smem.read]"].executions == 2 * 6 * 4

    def test_constant_broadcasts(self, sites):
        # One broadcast per FMA round: H * F * K * K per warp.
        assert sites["cm.filter_tap[cmem.read]"].executions == \
            4 * 2 * 9 * 4

    def test_output_stores(self, sites):
        # H * F vector stores per warp per block (possibly split between
        # the two alignment variants).
        total = sum(s.executions for name, s in sites.items()
                    if name.startswith("gm.store_out"))
        assert total == 4 * 2 * 4

    def test_flops_include_edge_overcompute(self, ledger):
        # 2 * K^2 * F * W * H per block: the grid tiles exactly here.
        assert ledger.flops == 2 * 9 * 2 * 64 * 4 * 4

    def test_barriers(self, ledger):
        assert ledger.syncthreads == (2 * 4 + 1) * 4


class TestGeneralCaseCounts:
    """Config W=32,H=4,FTB=16,WT=16,FT=4,CSH=2; problem 34^2, C=4, F=32.

    Geometry: out 32x32 -> 1x8 views x 2 filter groups = 16 blocks;
    TX=4, TY=8 -> 32 threads = 1 warp; 2 channel chunks.
    """

    CFG = GeneralCaseConfig(w=32, h=4, ftb=16, wt=16, ft=4, csh=2)
    PROBLEM = ConvProblem(height=34, width=34, channels=4, filters=32,
                          kernel_size=3)

    @pytest.fixture
    def ledger(self):
        return GeneralCaseKernel(config=self.CFG).cost(self.PROBLEM).ledger

    @pytest.fixture
    def sites(self, ledger):
        return ledger.sites

    def test_image_loads(self, sites):
        # Per block: per channel (4 total over the chunks), 6 footprint
        # rows of 34 floats = 17 float2 units -> 1 request per row.
        assert sites["gm.load_image[gmem.read]"].executions == \
            1 * 6 * 4 * 16

    def test_filter_loads(self, sites):
        # Per block: FTB runs of CSH*K*K = 18 scalars -> 1 request per
        # run per chunk.
        assert sites["gm.load_filter[gmem.read]"].executions == \
            16 * 2 * 16

    def test_image_register_rows(self, sites):
        # u_img = ceil((WT+K-1)/n) = 9 requests per (channel, j) per warp.
        assert sites["sm.load_image_row[smem.read]"].executions == \
            9 * 3 * 4 * 16

    def test_filter_register_reads(self, sites):
        # u_flt = FT/n = 2 requests per (channel, j, k) per warp.
        assert sites["sm.load_filter_row[smem.read]"].executions == \
            2 * 9 * 4 * 16

    def test_writeback_requests(self, sites):
        # FT * ceil(WT*4/16) = 4*4 wide stores per warp per block.
        assert sites["gm.store_out[gmem.write]"].executions == 16 * 16

    def test_flops(self, ledger):
        # 2 K^2 C FTB W H per block x 16 blocks == nominal (exact tiling).
        assert ledger.flops == 2 * 9 * 4 * 16 * 32 * 4 * 16
        assert ledger.flops == self.PROBLEM.flops

    def test_barriers(self, ledger):
        assert ledger.syncthreads == (2 * 2 + 2) * 16

    def test_sm_traffic_reduction_factor_realized(self, sites):
        """Sec. 4.2: image SM bytes == (WT+K-1)/(WT*K) of one-per-tap."""
        img = sites["sm.load_image_row[smem.read]"]
        per_tap_bytes = self.PROBLEM.flops / 2 / self.CFG.ft * 4
        measured_ratio = img.request_bytes / per_tap_bytes
        expected = (self.CFG.wt + 2) / (self.CFG.wt * 3)
        assert measured_ratio == pytest.approx(expected, rel=0.01)
