"""Tests for the bank-width matching model (paper Sec. 2.1)."""

import pytest

from repro.core.bankwidth import (
    DataType,
    VectorSpec,
    conventional_pattern,
    matched_pattern,
    matched_vector,
    mismatch_factor,
    smem_bandwidth_gain,
)
from repro.errors import ConfigurationError
from repro.gpu.memory.banks import BankConflictPolicy


class TestMismatchFactor:
    def test_float_on_kepler_is_two(self, kepler):
        assert mismatch_factor(kepler, 4) == 2

    def test_float_on_fermi_is_matched(self, fermi):
        assert mismatch_factor(fermi, 4) == 1

    def test_half_mismatched_everywhere(self, any_arch):
        # Sec. 6: short dtypes are mismatched even on 4-byte banks.
        assert mismatch_factor(any_arch, 2) >= 2

    def test_char_on_kepler_is_eight(self, kepler):
        assert mismatch_factor(kepler, 1) == 8

    def test_double_on_kepler_matched(self, kepler):
        assert mismatch_factor(kepler, 8) == 1

    def test_indivisible_width_treated_as_matched(self, kepler):
        assert mismatch_factor(kepler, 3) == 1

    def test_rejects_nonpositive(self, kepler):
        with pytest.raises(ConfigurationError):
            mismatch_factor(kepler, 0)


class TestVectorSpec:
    def test_matched_vector_name_on_kepler(self, kepler):
        assert matched_vector(kepler, 4).name == "float2"
        assert matched_vector(kepler, 2).name == "half4"

    def test_matched_vector_on_fermi(self, fermi):
        spec = matched_vector(fermi, 4)
        assert spec.n == 1 and spec.name == "float"

    def test_unit_bytes_equals_bank_width_when_matched(self, any_arch):
        spec = matched_vector(any_arch, 4)
        if spec.n > 1:
            assert spec.unit_bytes == any_arch.smem_bank_width

    def test_datatype_table(self):
        assert DataType.FLOAT.width == 4
        assert DataType.HALF.width == 2
        assert DataType.CHAR.width == 1

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            VectorSpec(data_width=4, n=0)


class TestPatterns:
    def test_conventional_pattern(self):
        assert list(conventional_pattern(4, 4)) == [0, 4, 8, 12]

    def test_matched_pattern(self):
        assert list(matched_pattern(4, 4, 2)) == [0, 8, 16, 24]

    def test_base_offset(self):
        assert conventional_pattern(2, 4, base=100)[0] == 100

    def test_rejects_nonpositive_threads(self):
        with pytest.raises(ConfigurationError):
            conventional_pattern(0, 4)
        with pytest.raises(ConfigurationError):
            matched_pattern(4, 4, 0)


class TestBandwidthGain:
    def test_kernel_framing_word_merge_gain_is_n(self, kepler):
        assert smem_bandwidth_gain(kepler, 4) == pytest.approx(2.0)

    def test_fig1_framing_paper_policy_gain_is_n(self, kepler):
        g = smem_bandwidth_gain(kepler, 4, policy=BankConflictPolicy.PAPER,
                                framing="fig1")
        assert g == pytest.approx(2.0)

    def test_matched_arch_gain_is_one(self, fermi):
        assert smem_bandwidth_gain(fermi, 4) == 1.0

    def test_short_dtypes_gain_more(self, kepler):
        assert smem_bandwidth_gain(kepler, 2) == pytest.approx(4.0)
        assert smem_bandwidth_gain(kepler, 1) == pytest.approx(8.0)

    def test_half_on_maxwell_gains_two(self, maxwell):
        # The paper's future-work claim, quantified.
        assert smem_bandwidth_gain(maxwell, 2) == pytest.approx(2.0)

    def test_invalid_framing_rejected(self, kepler):
        with pytest.raises(ConfigurationError):
            smem_bandwidth_gain(kepler, 4, framing="bogus")
