"""Tests for the registry-backed ServeStats surface."""

import pytest

from repro.obs import Registry
from repro.serve.stats import ServeStats, format_stats

CLOCK_HZ = 745e6


def _stats() -> ServeStats:
    return ServeStats(clock_hz=CLOCK_HZ)


class TestRecordBatch:
    def test_aggregates_match_legacy_contract(self):
        s = _stats()
        s.record_batch("special", 4, 1e-4, "full")
        s.record_batch("general", 2, 2e-4, "deadline", fallbacks=1)
        assert s.served == 6
        assert s.batches == 2
        assert s.fallbacks == 1
        assert s.busy_s == pytest.approx(3e-4)
        snap = s.snapshot()
        assert snap["requests_per_backend"] == {
            "special": 4, "general": 1, "naive": 1}
        assert snap["batches_per_backend"] == {"special": 1, "general": 1}
        assert snap["flush_reasons"] == {"full": 1, "deadline": 1}
        assert snap["batch_size_hist"] == {"2": 1, "4": 1}
        assert snap["mean_batch_size"] == 3.0

    def test_throughput(self):
        s = _stats()
        s.record_batch("naive", 10, 1e-3, "drain")
        assert s.throughput_rps == pytest.approx(10_000)

    def test_empty_snapshot_is_all_zeros(self):
        snap = _stats().snapshot()
        assert snap["served"] == 0
        assert snap["mean_batch_size"] == 0.0
        assert snap["throughput_rps"] == 0.0
        assert snap["latency_p99_s"] == 0.0
        assert snap["modeled_cycles_hist"] == {}


class TestLatencyPercentiles:
    def test_percentiles_in_snapshot(self):
        s = _stats()
        for i in range(1, 101):
            s.record_latency(i * 1e-3)
        snap = s.snapshot()
        assert snap["latency_p50_s"] == pytest.approx(50.5e-3)
        assert snap["latency_p95_s"] == pytest.approx(95.05e-3)
        assert snap["latency_p99_s"] == pytest.approx(99.01e-3)
        assert (snap["mean_latency_s"] <= snap["latency_p95_s"]
                <= snap["latency_p99_s"] <= snap["max_latency_s"])

    def test_mean_and_max_preserved(self):
        s = _stats()
        for v in (1e-3, 2e-3, 6e-3):
            s.record_latency(v)
        snap = s.snapshot()
        assert snap["mean_latency_s"] == pytest.approx(3e-3)
        assert snap["max_latency_s"] == pytest.approx(6e-3)


class TestCyclesHistogramGuard:
    def test_positive_cycles_bucket_log10(self):
        s = _stats()
        s.record_batch("naive", 1, 1e-3, "full")   # 745e3 cycles -> 1e5
        assert s.snapshot()["modeled_cycles_hist"] == {"1e5": 1}

    def test_zero_seconds_goes_to_nonpositive_bucket(self):
        s = _stats()
        s.record_batch("naive", 1, 0.0, "full")
        assert s.snapshot()["modeled_cycles_hist"] == {"<=0": 1}

    def test_mixed_buckets_sorted(self):
        s = _stats()
        s.record_batch("naive", 1, 0.0, "full")
        s.record_batch("naive", 1, 1e-3, "full")
        s.record_batch("naive", 1, 2e-3, "full")
        hist = s.snapshot()["modeled_cycles_hist"]
        assert hist == {"<=0": 1, "1e5": 1, "1e6": 1}


class TestRegistryBacking:
    def test_series_visible_in_shared_registry(self):
        reg = Registry()
        s = ServeStats(clock_hz=CLOCK_HZ, registry=reg)
        s.record_batch("special", 4, 1e-4, "full")
        counter = reg.get("serve_requests_total")
        assert counter.value(backend="special") == 4
        assert reg.get("serve_latency_seconds") is not None

    def test_private_registries_do_not_mix(self):
        a = _stats()
        b = _stats()
        a.record_batch("naive", 5, 1e-4, "full")
        assert b.served == 0


class TestFormatStats:
    def test_renders_percentile_line(self):
        s = _stats()
        s.record_batch("special", 2, 1e-4, "full")
        s.record_latency(1e-3)
        s.record_latency(2e-3)
        text = format_stats(s.snapshot())
        assert "latency p50/p95/p99" in text
        assert "served 2 requests" in text

    def test_legacy_snapshot_without_percentiles_still_renders(self):
        s = _stats()
        s.record_batch("special", 2, 1e-4, "full")
        snap = s.snapshot()
        for key in ("latency_p50_s", "latency_p95_s", "latency_p99_s"):
            del snap[key]
        assert "latency p50" not in format_stats(snap)
