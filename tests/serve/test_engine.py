"""End-to-end tests of the serving engine (and its asyncio facade)."""

import asyncio

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.serve import (
    AsyncServeEngine,
    ServeEngine,
    load_trace,
    save_trace,
    synthetic_trace,
)

TRACE = synthetic_trace(40, seed=5)


class TestServeTrace:
    def test_serves_mixed_trace_bit_exact(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=16)
        responses = engine.serve_trace(TRACE)
        assert len(responses) == len(TRACE)
        for request, response in zip(TRACE, responses):
            assert response.req_id == request.req_id
            reference = conv2d_reference(
                request.image, request.filters, request.problem.padding)
            assert np.array_equal(response.output, reference)

    def test_kernel_executor_matches_reference(self):
        engine = ServeEngine(executor="kernel", max_batch=8)
        responses = engine.serve_trace(synthetic_trace(12, seed=2))
        for request, response in zip(synthetic_trace(12, seed=2), responses):
            reference = conv2d_reference(
                request.image, request.filters, request.problem.padding)
            np.testing.assert_allclose(response.output, reference,
                                       rtol=1e-4, atol=1e-5)

    def test_batches_coalesce_same_shape(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=16)
        engine.serve_trace(TRACE)
        snap = engine.stats()
        assert snap["served"] == len(TRACE)
        assert snap["mean_batch_size"] > 1.0
        assert snap["batches"] < len(TRACE)

    def test_unbatched_engine_serves_singletons(self):
        engine = ServeEngine(deadline_s=0.0, max_batch=1)
        engine.serve_trace(TRACE)
        snap = engine.stats()
        assert snap["mean_batch_size"] == 1.0
        assert snap["batches"] == len(TRACE)

    def test_batched_throughput_beats_unbatched(self):
        batched = ServeEngine(deadline_s=1e-3, max_batch=16)
        batched.serve_trace(TRACE)
        unbatched = ServeEngine(deadline_s=0.0, max_batch=1)
        unbatched.serve_trace(TRACE)
        assert (batched.stats()["throughput_rps"]
                > unbatched.stats()["throughput_rps"])

    def test_plan_cache_hit_rate_on_repeated_shapes(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=16)
        engine.serve_trace(TRACE)
        cache = engine.stats()["plan_cache"]
        assert cache["misses"] == len({r.problem for r in TRACE})
        assert cache["hit_rate"] > 0.8

    def test_latency_accounting(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=16)
        responses = engine.serve_trace(TRACE)
        for request, response in zip(TRACE, responses):
            assert response.latency_s == pytest.approx(
                response.completed_s - request.arrival_s)
            assert response.latency_s > 0
        assert engine.stats()["max_latency_s"] >= engine.stats()["mean_latency_s"]

    def test_virtual_clock_is_monotone(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=16)
        responses = engine.serve_trace(TRACE)
        completions = [r.completed_s for r in
                       sorted(responses, key=lambda r: r.batch_id)]
        assert completions == sorted(completions)
        assert engine.clock_s == max(completions)


class TestOnlineMode:
    def test_submit_then_flush(self):
        engine = ServeEngine(deadline_s=1.0, max_batch=64)
        problem = ConvProblem.square(24, 3, channels=1, filters=2)
        for i in range(3):
            image, filters = problem.random_instance(seed=i)
            assert engine.submit(engine.make_request(image, filters)) == []
        responses = engine.flush()
        assert len(responses) == 3
        assert {r.batch_size for r in responses} == {3}

    def test_submit_flushes_full_group(self):
        engine = ServeEngine(deadline_s=1.0, max_batch=2)
        problem = ConvProblem.square(24, 3, channels=1, filters=2)
        image, filters = problem.random_instance(seed=0)
        assert engine.submit(engine.make_request(image, filters)) == []
        responses = engine.submit(engine.make_request(image, filters))
        assert len(responses) == 2

    def test_poll_respects_deadline(self):
        engine = ServeEngine(deadline_s=1e-3, max_batch=64)
        problem = ConvProblem.square(24, 3, channels=1, filters=2)
        image, filters = problem.random_instance(seed=0)
        engine.submit(engine.make_request(image, filters, arrival_s=0.0))
        assert engine.poll(0.5e-3) == []
        responses = engine.poll(2e-3)
        assert len(responses) == 1
        # Deadline-flushed batches start at the deadline, not the poll.
        assert responses[0].completed_s < 2e-3

    def test_execute_now_rejects_mixed_shapes(self):
        engine = ServeEngine()
        p1 = ConvProblem.square(24, 3, channels=1, filters=2)
        p2 = ConvProblem.square(32, 3, channels=1, filters=2)
        requests = [
            engine.make_request(*p1.random_instance(seed=0)),
            engine.make_request(*p2.random_instance(seed=1)),
        ]
        with pytest.raises(ReproError):
            engine.execute_now(requests)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ReproError):
            ServeEngine(executor="quantum")


class TestAsyncEngine:
    def test_concurrent_submissions_batch_together(self):
        async def scenario():
            engine = AsyncServeEngine(
                ServeEngine(max_batch=8), window_s=0.02)
            problem = ConvProblem.square(24, 3, channels=1, filters=2)
            pairs = [problem.random_instance(seed=i) for i in range(4)]
            responses = await asyncio.gather(*[
                engine.submit(image, filters) for image, filters in pairs
            ])
            await engine.drain()
            return pairs, responses

        pairs, responses = asyncio.run(scenario())
        assert [r.batch_size for r in responses] == [4, 4, 4, 4]
        assert len({r.batch_id for r in responses}) == 1
        for (image, filters), response in zip(pairs, responses):
            assert np.array_equal(
                response.output, conv2d_reference(image, filters))

    def test_full_group_flushes_without_waiting(self):
        async def scenario():
            engine = AsyncServeEngine(
                ServeEngine(max_batch=2), window_s=30.0)
            problem = ConvProblem.square(24, 3, channels=1, filters=2)
            pairs = [problem.random_instance(seed=i) for i in range(2)]
            responses = await asyncio.wait_for(asyncio.gather(*[
                engine.submit(image, filters) for image, filters in pairs
            ]), timeout=5.0)
            return responses

        responses = asyncio.run(scenario())
        assert [r.batch_size for r in responses] == [2, 2]


class TestTracePersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(path, TRACE)
        loaded = load_trace(path)
        assert len(loaded) == len(TRACE)
        for original, copy in zip(TRACE, loaded):
            assert copy.req_id == original.req_id
            assert copy.problem == original.problem
            assert copy.arrival_s == pytest.approx(original.arrival_s)
            assert np.array_equal(copy.image, original.image)
            assert np.array_equal(copy.filters, original.filters)

    def test_unseeded_requests_do_not_persist(self, tmp_path):
        engine = ServeEngine()
        problem = ConvProblem.square(24, 3, channels=1, filters=2)
        request = engine.make_request(*problem.random_instance(seed=0))
        with pytest.raises(ReproError):
            save_trace(str(tmp_path / "t.json"), [request])

    def test_synthetic_trace_validation(self):
        with pytest.raises(ReproError):
            synthetic_trace(0)
        with pytest.raises(ReproError):
            synthetic_trace(5, shapes=())

    def test_priority_and_deadline_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        trace = synthetic_trace(
            20, seed=4,
            priority_mix={"critical": 0.3, "standard": 0.4, "batch": 0.3},
            deadline_budget_s=2e-3)
        assert len({r.priority for r in trace}) > 1
        save_trace(path, trace)
        loaded = load_trace(path)
        for original, copy in zip(trace, loaded):
            assert copy.priority == original.priority
            assert copy.deadline_s == pytest.approx(original.deadline_s)

    def test_priority_mix_does_not_change_shapes_or_arrivals(self):
        plain = synthetic_trace(15, seed=2)
        mixed = synthetic_trace(15, seed=2,
                                priority_mix={"critical": 1.0})
        for a, b in zip(plain, mixed):
            assert a.problem == b.problem
            assert a.arrival_s == b.arrival_s

    def test_unknown_priority_class_rejected(self):
        with pytest.raises(ReproError, match="priority classes"):
            synthetic_trace(5, priority_mix={"urgent": 1.0})
