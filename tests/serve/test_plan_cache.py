"""Tests for the LRU kernel-plan cache."""

import pytest

from repro.errors import ReproError
from repro.serve.plan_cache import PlanCache


class TestHitMiss:
    def test_empty_lookup_is_a_miss(self):
        cache = PlanCache()
        assert cache.lookup("k") is None
        assert cache.misses == 1 and cache.hits == 0

    def test_put_then_lookup_is_a_hit(self):
        cache = PlanCache()
        cache.put("k", "plan")
        assert cache.lookup("k") == "plan"
        assert cache.hits == 1 and cache.misses == 0

    def test_hit_rate(self):
        cache = PlanCache()
        cache.put("k", "plan")
        cache.lookup("k")
        cache.lookup("k")
        cache.lookup("other")
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_before_any_lookup(self):
        assert PlanCache().hit_rate == 0.0

    def test_contains_does_not_count(self):
        cache = PlanCache()
        cache.put("k", "plan")
        assert "k" in cache and "other" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_get_or_build_builds_once(self):
        cache = PlanCache()
        calls = []

        def build():
            calls.append(1)
            return "plan"

        assert cache.get_or_build("k", build) == "plan"
        assert cache.get_or_build("k", build) == "plan"
        assert len(calls) == 1
        assert cache.misses == 1 and cache.hits == 1


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)           # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_lookup_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.lookup("a")           # "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_put_refreshes_recency(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)          # refresh, not insert
        cache.put("c", 3)
        assert cache.lookup("a") == 10
        assert "b" not in cache
        assert len(cache) == 2

    def test_capacity_one(self):
        cache = PlanCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 1 and "b" in cache

    def test_invalid_capacity(self):
        with pytest.raises(ReproError):
            PlanCache(capacity=0)


class TestStats:
    def test_stats_dict(self):
        cache = PlanCache(capacity=2)
        cache.put("a", 1)
        cache.lookup("a")
        cache.lookup("b")
        stats = cache.stats()
        assert stats == {
            "capacity": 2, "entries": 1, "hits": 1, "misses": 1,
            "evictions": 0, "hit_rate": 0.5,
        }

    def test_clear_keeps_counters(self):
        cache = PlanCache()
        cache.put("a", 1)
        cache.lookup("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1


class TestRegistryGauges:
    def test_hit_rate_gauge_tracks_lookups(self):
        from repro.obs.metrics import Registry

        registry = Registry()
        cache = PlanCache(capacity=4, registry=registry)
        gauge = registry.get("plan_cache_hit_rate")
        assert gauge is not None and gauge.value() == 0.0
        cache.put("a", 1)
        cache.lookup("a")
        assert gauge.value() == 1.0
        cache.lookup("b")
        assert gauge.value() == 0.5

    def test_eviction_counter_in_registry(self):
        from repro.obs.metrics import Registry

        registry = Registry()
        cache = PlanCache(capacity=1, registry=registry)
        cache.put("a", 1)
        cache.put("b", 2)
        assert registry.get("plan_cache_evictions_total").total() == 1
