"""End-to-end serving through the registry-only backends: FFT and
Winograd plan, execute, and return correct outputs via ServeEngine."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.serve.engine import ServeEngine


def _serve_one(engine, problem, seed=3):
    image, filters = problem.random_instance(seed=seed)
    request = engine.make_request(image, filters, problem.padding)
    responses = engine.serve_trace([request])
    assert len(responses) == 1
    return (image, filters), responses[0]


class TestFFTServing:
    #: FFT beats naive outright on a large-filter problem, so the cost
    #: model picks it even with the fallback in the candidate set.
    PROBLEM = ConvProblem.square(48, 7, channels=16, filters=16)

    def test_plan_picks_fft(self):
        engine = ServeEngine(backends=("fft",))
        plan = engine.dispatcher.plan(self.PROBLEM)
        assert plan.backend == "fft"
        assert "fft" in plan.candidates and "naive" in plan.candidates

    def test_round_trip_kernel_executor(self):
        engine = ServeEngine(backends=("fft",), executor="kernel")
        (image, filters), response = _serve_one(engine, self.PROBLEM)
        assert response.backend == "fft"
        assert not response.fallback
        np.testing.assert_allclose(
            response.output,
            conv2d_reference(image, filters, self.PROBLEM.padding),
            rtol=1e-3, atol=1e-3)


class TestWinogradServing:
    #: A deep 3x3 layer: Winograd's 2.25x multiply reduction wins.
    PROBLEM = ConvProblem.square(32, 3, channels=32, filters=32)

    def test_plan_picks_winograd(self):
        engine = ServeEngine(backends=("winograd",))
        plan = engine.dispatcher.plan(self.PROBLEM)
        assert plan.backend == "winograd"

    def test_round_trip_kernel_executor(self):
        engine = ServeEngine(backends=("winograd",), executor="kernel")
        (image, filters), response = _serve_one(engine, self.PROBLEM)
        assert response.backend == "winograd"
        assert not response.fallback
        np.testing.assert_allclose(
            response.output,
            conv2d_reference(image, filters, self.PROBLEM.padding),
            rtol=1e-3, atol=1e-3)

    def test_non_3x3_degrades_to_naive(self):
        # Winograd cannot serve K=5; the registry's fallback invariant
        # still produces a plan.
        engine = ServeEngine(backends=("winograd",), executor="kernel")
        problem = ConvProblem.square(24, 5, channels=4, filters=4)
        _, response = _serve_one(engine, problem)
        assert response.backend == "naive"
        image, filters = problem.random_instance(seed=3)


class TestDefaultPortfolio:
    def test_winograd_wins_in_full_portfolio(self):
        # With every backend enabled a deep 3x3 layer still routes to
        # Winograd -- it is a first-class citizen, not an opt-in.  (At
        # this depth the 2.25x multiply reduction beats even the tuned
        # general-case kernel.)
        engine = ServeEngine()
        problem = ConvProblem.square(64, 3, channels=256, filters=256)
        plan = engine.dispatcher.plan(problem)
        assert plan.backend == "winograd"
        assert set(plan.candidates) >= {"general", "naive", "winograd"}

    def test_unknown_backend_rejected_with_names(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="registered backends"):
            ServeEngine(backends=("fft", "tensor-core"))
