"""Tests for the dynamic batcher: deadline flush, size flush, drain."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.serve.batcher import DynamicBatcher
from repro.serve.request import ConvRequest


def make_request(req_id, problem=None, arrival_s=0.0):
    problem = problem or ConvProblem.square(16, 3, channels=1, filters=2)
    image, filters = problem.random_instance(seed=req_id)
    return ConvRequest(req_id=req_id, problem=problem, image=image,
                       filters=filters, arrival_s=arrival_s)


class TestDeadlineFlush:
    def test_not_due_before_deadline(self):
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        batcher.add("k", make_request(0), now=0.0)
        assert batcher.due(now=0.5e-3) == []
        assert batcher.pending == 1

    def test_due_at_deadline(self):
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        batcher.add("k", make_request(0, arrival_s=0.0), now=0.0)
        batcher.add("k", make_request(1, arrival_s=0.4e-3), now=0.4e-3)
        batches = batcher.due(now=1e-3)
        assert len(batches) == 1
        assert batches[0].reason == "deadline"
        assert len(batches[0]) == 2
        assert batcher.pending == 0

    def test_deadline_runs_from_oldest_member(self):
        # A later arrival must not extend the oldest request's wait.
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        batcher.add("k", make_request(0), now=0.0)
        batcher.add("k", make_request(1), now=0.9e-3)
        assert len(batcher.due(now=1e-3)) == 1

    def test_groups_flush_independently(self):
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        batcher.add("a", make_request(0), now=0.0)
        batcher.add("b", make_request(1), now=0.8e-3)
        batches = batcher.due(now=1.0e-3)
        assert [b.key for b in batches] == ["a"]
        assert batcher.pending == 1

    def test_next_deadline(self):
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        assert batcher.next_deadline() is None
        batcher.add("a", make_request(0), now=2e-3)
        batcher.add("b", make_request(1), now=1e-3)
        assert batcher.next_deadline() == pytest.approx(2e-3)

    def test_zero_deadline_due_immediately(self):
        batcher = DynamicBatcher(deadline_s=0.0, max_batch=8)
        batcher.add("k", make_request(0), now=5.0)
        assert len(batcher.due(now=5.0)) == 1


class TestSizeFlush:
    def test_full_batch_returned_by_add(self):
        batcher = DynamicBatcher(deadline_s=1.0, max_batch=3)
        assert batcher.add("k", make_request(0), now=0.0) is None
        assert batcher.add("k", make_request(1), now=0.0) is None
        full = batcher.add("k", make_request(2), now=0.0)
        assert full is not None and full.reason == "full"
        assert len(full) == 3
        assert batcher.pending == 0

    def test_max_batch_one_flushes_every_add(self):
        batcher = DynamicBatcher(deadline_s=1.0, max_batch=1)
        full = batcher.add("k", make_request(0), now=0.0)
        assert full is not None and len(full) == 1

    def test_different_shapes_never_coalesce(self):
        batcher = DynamicBatcher(deadline_s=1.0, max_batch=2)
        assert batcher.add("a", make_request(0), now=0.0) is None
        assert batcher.add("b", make_request(1), now=0.0) is None
        assert batcher.pending == 2


class TestDrain:
    def test_drain_pops_everything_in_age_order(self):
        batcher = DynamicBatcher(deadline_s=1.0, max_batch=8)
        batcher.add("b", make_request(0), now=2.0)
        batcher.add("a", make_request(1), now=1.0)
        batches = batcher.drain()
        assert [b.key for b in batches] == ["a", "b"]
        assert all(b.reason == "drain" for b in batches)
        assert batcher.pending == 0


class TestEdgeCases:
    def test_zero_deadline_multiple_groups_all_due(self):
        batcher = DynamicBatcher(deadline_s=0.0, max_batch=8)
        batcher.add("a", make_request(0), now=1.0)
        batcher.add("b", make_request(1), now=1.0)
        batches = batcher.due(now=1.0)
        assert sorted(b.key for b in batches) == ["a", "b"]
        assert all(len(b) == 1 for b in batches)

    def test_expired_deadline_flushes_on_next_poll(self):
        # A group whose deadline passed long ago is due immediately —
        # the batcher never holds work past its flush time, no matter
        # how late the next poll lands.
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        batcher.add("k", make_request(0), now=0.0)
        batches = batcher.due(now=10.0)
        assert len(batches) == 1
        assert batches[0].reason == "deadline"

    def test_single_request_deadline_flush(self):
        # One lonely request still flushes as a batch of one at its
        # deadline; it is never stranded waiting for company.
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=32)
        batcher.add("k", make_request(0, arrival_s=0.0), now=0.0)
        assert batcher.due(now=0.9e-3) == []
        batches = batcher.due(now=1e-3)
        assert len(batches) == 1 and len(batches[0]) == 1
        assert batcher.pending == 0

    def test_mixed_shape_interleaved_arrivals(self):
        # a b a b a b: groups accumulate independently and each flush
        # preserves per-group arrival order.
        batcher = DynamicBatcher(deadline_s=1e-3, max_batch=8)
        pa = ConvProblem.square(16, 3, channels=1, filters=2)
        pb = ConvProblem.square(24, 3, channels=1, filters=2)
        for i in range(6):
            key, problem = (("a", pa), ("b", pb))[i % 2]
            t = i * 1e-4
            batcher.add(key, make_request(i, problem, arrival_s=t), now=t)
        batches = batcher.due(now=2e-3)
        assert [b.key for b in batches] == ["a", "b"]
        assert [r.req_id for r in batches[0].requests] == [0, 2, 4]
        assert [r.req_id for r in batches[1].requests] == [1, 3, 5]

    def test_mixed_shape_interleaving_size_flush_only_fills_group(self):
        # An interleaved stream fills group a to max_batch without
        # dragging group b's pending work along.
        batcher = DynamicBatcher(deadline_s=1.0, max_batch=2)
        pa = ConvProblem.square(16, 3, channels=1, filters=2)
        pb = ConvProblem.square(24, 3, channels=1, filters=2)
        assert batcher.add("a", make_request(0, pa), now=0.0) is None
        assert batcher.add("b", make_request(1, pb), now=0.0) is None
        full = batcher.add("a", make_request(2, pa), now=0.0)
        assert full is not None and full.key == "a"
        assert [r.req_id for r in full.requests] == [0, 2]
        assert batcher.pending == 1


class TestValidation:
    def test_negative_deadline_rejected(self):
        with pytest.raises(ReproError):
            DynamicBatcher(deadline_s=-1.0)

    def test_zero_max_batch_rejected(self):
        with pytest.raises(ReproError):
            DynamicBatcher(max_batch=0)
