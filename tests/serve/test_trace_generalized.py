"""Generalized-axis traces: shape families, persistence, end-to-end
serving, and fleet routing stability.

The generalization contract for the serving layer is two-sided: traces
over default-axis shapes must stay byte-identical to pre-generalization
files and routing, while strided / dilated / depthwise / NHWC shapes
must round-trip through JSON, dispatch, and the fleet router.
"""

import json

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Layout
from repro.errors import ReproError
from repro.fleet.router import shape_hash
from repro.serve.dispatch import Dispatcher
from repro.serve.trace import (
    DEFAULT_SERVING_SHAPES,
    GENERALIZED_SERVING_SHAPES,
    SHAPE_FAMILIES,
    load_trace,
    save_trace,
    synthetic_trace,
)

DEPTHWISE = ConvProblem.square(24, 3, channels=4, filters=4, groups=4)
STRIDED_NHWC = ConvProblem.square(32, 3, channels=2, filters=4,
                                  stride=2, layout=Layout.NHWC)


class TestShapeFamilies:
    def test_default_family_is_byte_identical_to_shapes_arg(self):
        a = synthetic_trace(12, seed=3)
        b = synthetic_trace(12, seed=3, shape_family="classic")
        for x, y in zip(a, b):
            assert x.problem == y.problem
            assert x.arrival_s == y.arrival_s
            np.testing.assert_array_equal(x.image, y.image)

    def test_generalized_family_draws_generalized_axes(self):
        requests = synthetic_trace(40, seed=0, shape_family="generalized")
        problems = {r.problem for r in requests}
        assert problems <= set(GENERALIZED_SERVING_SHAPES)
        assert any(p.stride > 1 for p in problems)
        assert any(p.dilation > 1 for p in problems)
        assert any(p.groups == p.channels > 1 for p in problems)

    def test_mixed_family_interleaves_both_palettes(self):
        requests = synthetic_trace(120, seed=1, shape_family="mixed")
        problems = {r.problem for r in requests}
        assert problems & set(DEFAULT_SERVING_SHAPES)
        assert problems & set(GENERALIZED_SERVING_SHAPES)

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError) as excinfo:
            synthetic_trace(4, shape_family="mobile")
        assert "shape families" in str(excinfo.value)

    def test_families_registry_complete(self):
        assert set(SHAPE_FAMILIES) == {"classic", "generalized", "mixed"}


class TestPersistence:
    def test_generalized_axes_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        requests = synthetic_trace(25, seed=7, shape_family="mixed")
        save_trace(path, requests)
        loaded = load_trace(path)
        assert len(loaded) == len(requests)
        for orig, back in zip(requests, loaded):
            assert back.problem == orig.problem
            np.testing.assert_array_equal(back.image, orig.image)
            np.testing.assert_array_equal(back.filters, orig.filters)

    def test_default_axis_records_have_no_axis_keys(self, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(path, synthetic_trace(10, seed=2))
        with open(path) as fh:
            doc = json.load(fh)
        for rec in doc["requests"]:
            for key in ("stride", "dilation", "groups", "layout"):
                assert key not in rec

    def test_generalized_records_persist_only_non_default(self, tmp_path):
        path = str(tmp_path / "trace.json")
        save_trace(path, synthetic_trace(30, seed=4,
                                         shape_family="generalized"))
        with open(path) as fh:
            doc = json.load(fh)
        assert any("stride" in rec or "groups" in rec
                   for rec in doc["requests"])
        for rec in doc["requests"]:
            assert rec.get("stride") != 1
            assert rec.get("dilation") != 1
            assert rec.get("groups") != 1
            assert rec.get("layout") != "nchw"


class TestGeneralizedDispatch:
    @pytest.mark.parametrize("executor", ["reference", "kernel"])
    def test_serves_generalized_requests(self, executor):
        dispatcher = Dispatcher()
        for problem in (DEPTHWISE, STRIDED_NHWC):
            plan = dispatcher.plan(problem)
            requests = synthetic_trace(3, shapes=(problem,), seed=5)
            outputs, fell, _ = dispatcher.execute(plan, requests,
                                                  executor=executor)
            assert not any(fell)
            for request, output in zip(requests, outputs):
                np.testing.assert_allclose(
                    output,
                    conv2d_reference(request.image, request.filters,
                                     problem=problem),
                    rtol=1e-4, atol=1e-5)

    def test_depthwise_plan_prefers_a_grouped_backend(self):
        plan = Dispatcher().plan(DEPTHWISE)
        assert plan.backend in ("depthwise", "im2col", "naive")
        assert "depthwise" in plan.candidates


class TestRoutingStability:
    def test_default_axis_hash_unchanged_by_generalization(self):
        # The hashed blob only grows for non-default axes, so every
        # pre-existing shape keeps its replica assignment.
        problem = ConvProblem.square(32, 3, channels=8, filters=16)
        blob = "%d|%d|%d|%d|%d|%s|" % (
            problem.height, problem.width, problem.channels,
            problem.filters, problem.kernel_size, problem.padding.value)
        import hashlib
        want = int.from_bytes(
            hashlib.blake2b(blob.encode("ascii"), digest_size=8).digest(),
            "big")
        assert shape_hash(problem) == want

    def test_generalized_axes_separate_hashes(self):
        base = ConvProblem.square(32, 3, channels=4, filters=4)
        strided = ConvProblem.square(32, 3, channels=4, filters=4, stride=2)
        dilated = ConvProblem.square(32, 3, channels=4, filters=4,
                                     dilation=2)
        nhwc = ConvProblem.square(32, 3, channels=4, filters=4,
                                  layout=Layout.NHWC)
        hashes = {shape_hash(p) for p in (base, strided, dilated, nhwc)}
        assert len(hashes) == 4
