"""Tests for cost-model-driven dispatch and graceful degradation."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.serve.dispatch import DEFAULT_BACKENDS, Dispatcher, KernelPlan
from repro.serve.plan_cache import PlanCache
from repro.serve.request import ConvRequest

SPECIAL = ConvProblem.square(48, 3, channels=1, filters=4)
GENERAL = ConvProblem.square(32, 3, channels=8, filters=16)

#: Sentinel planted in an image to make FlakyMarkerKernel fail on it.
POISON = -1.0e30


def make_request(problem, req_id=0):
    image, filters = problem.random_instance(seed=req_id)
    return ConvRequest(req_id=req_id, problem=problem, image=image,
                       filters=filters)


class FlakyMarkerKernel:
    """Fails exactly on requests whose image carries the POISON marker.

    Module-level (hence picklable) so the mixed-batch accounting test
    behaves the same whether ``execute`` runs serially or fans out.
    """

    name = "flaky"

    def run(self, image, filters, padding=0, problem=None):
        # Threshold, not equality: float32 storage rounds the marker.
        if image.flat[0] < POISON / 2:
            raise RuntimeError("kernel exploded on marked request")
        return conv2d_reference(image, filters, padding, problem=problem)


class TestPlanning:
    def test_plan_picks_cheapest_candidate(self):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        assert plan.backend in DEFAULT_BACKENDS
        assert plan.breakdown.total == min(plan.candidates.values())
        assert plan.candidates[plan.backend] == plan.breakdown.total

    def test_special_candidate_only_for_single_channel(self):
        dispatcher = Dispatcher()
        assert "special" in dispatcher.plan(SPECIAL).candidates
        assert "special" not in dispatcher.plan(GENERAL).candidates

    def test_paper_kernel_plans_carry_their_dse_config(self):
        dispatcher = Dispatcher(backends=("general",))
        plan = dispatcher.plan(GENERAL)
        assert plan.backend == "general"
        assert plan.config is not None

    def test_plans_are_cached_per_shape(self):
        cache = PlanCache()
        dispatcher = Dispatcher(cache=cache)
        first = dispatcher.plan(GENERAL)
        second = dispatcher.plan(GENERAL)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_naive_backend_always_enabled(self):
        dispatcher = Dispatcher(backends=("general",))
        assert "naive" in dispatcher.backends

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            Dispatcher(backends=("special", "tensor-core"))

    def test_degrades_to_naive_when_nothing_plans(self, monkeypatch):
        dispatcher = Dispatcher()

        class Exploding:
            name = "boom"

            def predict(self, problem, model=None):
                raise ReproError("no plan for you")

        monkeypatch.setattr(
            dispatcher, "_candidates",
            lambda problem: iter([("general", Exploding(), None)]),
        )
        plan = dispatcher.build_plan(GENERAL)
        assert plan.backend == "naive"
        assert plan.source == "degraded"

    def test_batch_seconds_amortizes_launch_only(self):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        t4 = plan.batch_seconds(4)
        assert t4 == pytest.approx(plan.launch_s + 4 * plan.busy_s)
        assert t4 < 4 * plan.breakdown.total


class TestExecution:
    def test_reference_executor_is_bit_exact(self):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        request = make_request(GENERAL)
        output, fell = dispatcher.run_one(plan, request, executor="reference")
        assert not fell
        assert np.array_equal(
            output, conv2d_reference(request.image, request.filters))

    def test_kernel_executor_matches_reference(self):
        dispatcher = Dispatcher(backends=("general",))
        plan = dispatcher.plan(GENERAL)
        request = make_request(GENERAL)
        output, fell = dispatcher.run_one(plan, request, executor="kernel")
        assert not fell
        np.testing.assert_allclose(
            output, conv2d_reference(request.image, request.filters),
            rtol=1e-4, atol=1e-5)

    def test_unknown_executor_rejected(self):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        with pytest.raises(ReproError):
            dispatcher.run_one(plan, make_request(GENERAL), executor="magic")

    def test_fallback_on_kernel_error(self):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)

        class Broken:
            name = "broken"

            def run(self, image, filters, padding):
                raise RuntimeError("kernel exploded")

        broken_plan = KernelPlan(
            problem=GENERAL, backend=plan.backend, kernel=Broken(),
            breakdown=plan.breakdown, config=plan.config,
        )
        requests = [make_request(GENERAL, i) for i in range(3)]
        outputs, fell, seconds = dispatcher.execute(
            broken_plan, requests, executor="kernel")
        assert fell == [True, True, True]
        for request, output in zip(requests, outputs):
            assert np.array_equal(
                output, conv2d_reference(request.image, request.filters))
        # The batch is re-priced as a naive launch.
        naive = dispatcher.fallback_plan(GENERAL)
        assert seconds == pytest.approx(naive.batch_seconds(3))

    def test_partial_fallback_prices_both_launches(self, monkeypatch):
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        requests = [make_request(GENERAL, i) for i in range(4)]

        calls = []
        real = dispatcher.run_one

        def flaky(p, request, executor="reference"):
            calls.append(request.req_id)
            if request.req_id == 2:
                return real(p, request, executor="reference")[0], True
            return real(p, request, executor="reference")

        monkeypatch.setattr(dispatcher, "run_one", flaky)
        # jobs=1 pins the serial path: the fan-out path serves requests
        # in worker processes and cannot see this monkeypatched hook.
        _, fell, seconds = dispatcher.execute(plan, requests, jobs=1)
        assert fell == [False, False, True, False]
        naive = dispatcher.fallback_plan(GENERAL)
        assert seconds == pytest.approx(
            plan.batch_seconds(3) + naive.batch_seconds(1))

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_mixed_batch_fallback_accounting(self, jobs):
        """dispatch_fallbacks_total and the naive surcharge must both
        equal the number of requests that actually fell back."""
        dispatcher = Dispatcher()
        plan = dispatcher.plan(GENERAL)
        requests = [make_request(GENERAL, i) for i in range(5)]
        for i in (1, 3):
            requests[i].image.flat[0] = POISON
        flaky_plan = KernelPlan(
            problem=GENERAL, backend=plan.backend,
            kernel=FlakyMarkerKernel(), breakdown=plan.breakdown,
            config=plan.config,
        )
        outputs, fell, seconds = dispatcher.execute(
            flaky_plan, requests, executor="kernel", jobs=jobs)
        assert fell == [False, True, False, True, False]
        # Counter and pricing agree with the per-request flags.
        fallbacks = dispatcher.registry.get("dispatch_fallbacks_total")
        assert fallbacks.total() == float(sum(fell)) == 2.0
        naive = dispatcher.fallback_plan(GENERAL)
        assert seconds == pytest.approx(
            plan.batch_seconds(3) + naive.batch_seconds(2))
        # Fallen-back requests still produce correct outputs.
        for request, output in zip(requests, outputs):
            assert np.array_equal(
                output, conv2d_reference(request.image, request.filters))
