"""Integration tests: every implemented convolution method computes the
same function, end to end, across the public API."""

import numpy as np
import pytest

import repro
from repro import (
    ConvProblem,
    GeneralCaseKernel,
    Padding,
    SpecialCaseKernel,
    conv2d_reference,
)
from repro.baselines import (
    FFTConvolution,
    Im2colKernel,
    ImplicitGemmKernel,
    NaiveDirectKernel,
    WinogradConvolution,
)
from repro.core.config import GeneralCaseConfig, SpecialCaseConfig
from repro.gpu.timing import TimingModel


ALL_GENERAL_METHODS = [
    ("general", GeneralCaseKernel(config=GeneralCaseConfig(
        w=16, h=8, ftb=16, wt=8, ft=4, csh=2))),
    ("implicit-gemm", ImplicitGemmKernel()),
    ("im2col", Im2colKernel()),
    ("naive", NaiveDirectKernel()),
    ("fft", FFTConvolution()),
    ("winograd", WinogradConvolution()),
]


class TestAllMethodsAgree:
    @pytest.mark.parametrize("name,kernel", ALL_GENERAL_METHODS,
                             ids=[n for n, _ in ALL_GENERAL_METHODS])
    def test_3x3_multichannel(self, rng, name, kernel):
        img = rng.standard_normal((6, 22, 26)).astype(np.float32)
        flt = rng.standard_normal((9, 6, 3, 3)).astype(np.float32)
        expected = conv2d_reference(img, flt)
        np.testing.assert_allclose(kernel.run(img, flt), expected,
                                   rtol=1e-2, atol=1e-2)

    @pytest.mark.parametrize("name,kernel", ALL_GENERAL_METHODS[:4],
                             ids=[n for n, _ in ALL_GENERAL_METHODS[:4]])
    def test_5x5_same_padding(self, rng, name, kernel):
        img = rng.standard_normal((3, 17, 19)).astype(np.float32)
        flt = rng.standard_normal((4, 3, 5, 5)).astype(np.float32)
        expected = conv2d_reference(img, flt, Padding.SAME)
        np.testing.assert_allclose(kernel.run(img, flt, Padding.SAME), expected,
                                   rtol=1e-2, atol=1e-2)

    def test_special_and_general_agree_on_single_channel(self, rng):
        img = rng.standard_normal((24, 40)).astype(np.float32)
        flt = rng.standard_normal((5, 3, 3)).astype(np.float32)
        special = SpecialCaseKernel(
            config=SpecialCaseConfig(block_w=64, block_h=4)).run(img, flt)
        general = GeneralCaseKernel(config=GeneralCaseConfig(
            w=16, h=8, ftb=16, wt=8, ft=4, csh=1)).run(
                img[np.newaxis], flt[:, np.newaxis])
        np.testing.assert_allclose(special, general, rtol=1e-3, atol=1e-3)


class TestCostPipeline:
    """cost() -> TimingModel -> GFlop/s works for every method."""

    @pytest.mark.parametrize("name,kernel", ALL_GENERAL_METHODS,
                             ids=[n for n, _ in ALL_GENERAL_METHODS])
    def test_predict_pipeline(self, name, kernel):
        p = ConvProblem.square(64, 3, channels=16, filters=32)
        tb = kernel.predict(p)
        assert tb.total > 0
        assert kernel.gflops(p) > 0

    def test_custom_timing_model_accepted(self):
        p = ConvProblem.square(64, 3, channels=16, filters=32)
        slow = TimingModel(repro.KEPLER_K40M, compute_efficiency=0.35)
        fast = TimingModel(repro.KEPLER_K40M, compute_efficiency=0.70)
        kern = GeneralCaseKernel()
        assert kern.gflops(p, slow) <= kern.gflops(p, fast)


class TestCrossArchitecture:
    def test_kernels_run_on_all_architectures(self, any_arch, rng):
        img = rng.standard_normal((20, 70)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3)).astype(np.float32)
        kern = SpecialCaseKernel(
            arch=any_arch, config=SpecialCaseConfig(block_w=64, block_h=4))
        expected = conv2d_reference(img, flt)
        np.testing.assert_allclose(kern.run(img, flt), expected,
                                   rtol=1e-3, atol=1e-3)

    def test_matched_vector_differs_by_arch(self):
        assert SpecialCaseKernel(repro.KEPLER_K40M).n == 2
        assert SpecialCaseKernel(repro.FERMI_M2090).n == 1
        assert SpecialCaseKernel(repro.MAXWELL_GM204).n == 1

    def test_bankwidth_ablation_only_bites_on_kepler(self):
        """Forcing n=1 must hurt on Kepler and be a no-op on Fermi."""
        p = ConvProblem.square(1024, 3, channels=1, filters=16)
        kepler_gap = (SpecialCaseKernel(repro.KEPLER_K40M, matched=False).gflops(p)
                      / SpecialCaseKernel(repro.KEPLER_K40M).gflops(p))
        fermi_gap = (SpecialCaseKernel(repro.FERMI_M2090, matched=False).gflops(p)
                     / SpecialCaseKernel(repro.FERMI_M2090).gflops(p))
        assert kepler_gap < 0.95
        assert fermi_gap == pytest.approx(1.0)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.9.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_snippet(self):
        """The README quickstart must keep working verbatim."""
        image = np.random.rand(64, 64).astype(np.float32)
        sobel = np.array([[1, 0, -1], [2, 0, -2], [1, 0, -1]], np.float32)
        kernel = repro.SpecialCaseKernel()
        edges = kernel.run(image, sobel)
        assert edges.shape == (1, 62, 62)
        problem = repro.ConvProblem.square(64, 3, channels=1, filters=1)
        assert kernel.gflops(problem) > 0
