"""Tests for the deterministic fault injector."""

import pytest

from repro.chaos import FaultInjector, FaultKind, FaultPlan
from repro.errors import ChaosError


def injector(spec, n_replicas=4, seed=None):
    return FaultInjector(FaultPlan.parse(spec, seed=seed), n_replicas)


class TestReplicaPinning:
    def test_unpinned_replica_fault_gets_a_seeded_replica(self):
        inj = injector("crash", seed=3)
        assert inj.specs[0].replica in range(4)

    def test_pinning_is_a_pure_function_of_plan_and_fleet_size(self):
        a = injector("crash;wedge;slow", seed=11)
        b = injector("crash;wedge;slow", seed=11)
        assert [s.replica for s in a.specs] == [s.replica for s in b.specs]

    def test_event_faults_are_never_pinned(self):
        inj = injector("build-fail;cache-corrupt", seed=3)
        assert all(spec.replica is None for spec in inj.specs)

    def test_needs_at_least_one_replica(self):
        with pytest.raises(ChaosError, match="replica"):
            FaultInjector(FaultPlan.parse("crash"), 0)


class TestReplicaDirectives:
    def test_fault_fires_times_attempts_then_recovers(self):
        inj = injector("crash:replica=1,times=2")
        assert inj.replica_directives(1)["fault"] == "crash"
        assert inj.replica_directives(1)["fault"] == "crash"
        assert inj.replica_directives(1) is None

    def test_other_replicas_unaffected(self):
        inj = injector("crash:replica=1")
        assert inj.replica_directives(0) is None
        assert inj.replica_directives(2) is None

    def test_crash_carries_after_and_slow_carries_factor(self):
        inj = injector("crash:replica=0,after=7;slow:replica=1,factor=6")
        assert inj.replica_directives(0) == {"fault": "crash", "after": 7}
        assert inj.replica_directives(1) == {"fault": "slow", "factor": 6.0}

    def test_crash_beats_wedge_beats_slow(self):
        inj = injector("slow:replica=0;wedge:replica=0;crash:replica=0")
        first = inj.replica_directives(0)
        assert first["fault"] == "crash"
        # The losing faults were not consumed: they fire on later attempts.
        assert inj.replica_directives(0)["fault"] == "wedge"
        assert inj.replica_directives(0)["fault"] == "slow"
        assert inj.replica_directives(0) is None

    def test_obs_drop_composes_with_other_faults(self):
        inj = injector("slow:replica=0;obs-drop:replica=0")
        directives = inj.replica_directives(0)
        assert directives["fault"] == "slow"
        assert directives["drop_obs"] is True


class TestEventFaults:
    def test_take_fires_on_nth_event(self):
        inj = injector("build-fail:nth=3")
        assert inj.take(FaultKind.BUILD_FAIL) is None
        assert inj.take(FaultKind.BUILD_FAIL) is None
        assert inj.take(FaultKind.BUILD_FAIL) is not None
        assert inj.take(FaultKind.BUILD_FAIL) is None

    def test_times_fires_consecutive_events(self):
        inj = injector("cache-corrupt:times=2")
        assert inj.take(FaultKind.CACHE_CORRUPT) is not None
        assert inj.take(FaultKind.CACHE_CORRUPT) is not None
        assert inj.take(FaultKind.CACHE_CORRUPT) is None

    def test_kinds_count_events_independently(self):
        inj = injector("build-fail;version-skew:nth=2")
        assert inj.take(FaultKind.VERSION_SKEW) is None
        assert inj.take(FaultKind.BUILD_FAIL) is not None
        assert inj.take(FaultKind.VERSION_SKEW) is not None


class TestFiringReport:
    def test_fired_and_unfired_account_declared_faults(self):
        inj = injector("crash:replica=1,times=2;wedge:replica=7")
        inj.replica_directives(1)
        report = inj.fired()
        assert report[0]["fired"] == 1 and report[0]["declared"] == 2
        assert inj.total_fired == 1
        # A fault targeting a replica beyond the fleet never fires; the
        # report exposes it instead of silently passing the run.
        assert "wedge:replica=7" in inj.unfired()
