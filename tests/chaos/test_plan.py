"""Tests for the chaos spec grammar and fault-plan model."""

import pytest

from repro.chaos import CHAOS_ENV, FaultKind, FaultPlan, FaultSpec
from repro.errors import ChaosError, ReproError


class TestGrammar:
    def test_bare_kind_parses(self):
        plan = FaultPlan.parse("crash")
        assert len(plan) == 1
        assert plan.specs[0].kind is FaultKind.REPLICA_CRASH
        assert plan.specs[0].times == 1

    def test_full_clause_parses(self):
        plan = FaultPlan.parse(
            "seed=7;crash:replica=1,times=2,after=5;slow:factor=8")
        assert plan.seed == 7
        crash, slow = plan.specs
        assert crash.replica == 1 and crash.times == 2 and crash.after == 5
        assert slow.kind is FaultKind.SLOW_REPLICA and slow.factor == 8.0

    def test_every_kind_value_is_parseable(self):
        for kind in FaultKind:
            plan = FaultPlan.parse(kind.value)
            assert plan.specs[0].kind is kind

    def test_seed_argument_overrides_seed_clause(self):
        assert FaultPlan.parse("seed=7;crash", seed=42).seed == 42

    def test_describe_round_trips(self):
        spec = "seed=3;crash:replica=1,times=2,after=5;slow:replica=0,factor=8"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_unknown_kind_names_the_valid_kinds(self):
        with pytest.raises(ChaosError, match="cache-corrupt"):
            FaultPlan.parse("explode")

    def test_unknown_key_rejected(self):
        with pytest.raises(ChaosError, match="replica"):
            FaultPlan.parse("crash:bogus=1")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ChaosError, match="expected a number"):
            FaultPlan.parse("crash:times=lots")

    def test_empty_spec_rejected(self):
        for bad in ("", "  ", ";;", "seed=4"):
            with pytest.raises(ChaosError):
                FaultPlan.parse(bad)

    def test_chaos_error_is_a_repro_error(self):
        assert issubclass(ChaosError, ReproError)


class TestSpecValidation:
    def test_bounds_enforced(self):
        with pytest.raises(ChaosError, match="times"):
            FaultSpec(kind=FaultKind.REPLICA_CRASH, times=0)
        with pytest.raises(ChaosError, match="after"):
            FaultSpec(kind=FaultKind.REPLICA_CRASH, after=-1)
        with pytest.raises(ChaosError, match="factor"):
            FaultSpec(kind=FaultKind.SLOW_REPLICA, factor=1.0)
        with pytest.raises(ChaosError, match="nth"):
            FaultSpec(kind=FaultKind.BUILD_FAIL, nth=0)
        with pytest.raises(ChaosError, match="replica"):
            FaultSpec(kind=FaultKind.REPLICA_CRASH, replica=-2)


class TestEnv:
    def test_unset_env_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(CHAOS_ENV, "   ")
        assert FaultPlan.from_env() is None

    def test_env_spec_parses(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=5;wedge:replica=2")
        plan = FaultPlan.from_env()
        assert plan.seed == 5
        assert plan.specs[0].kind is FaultKind.WORKER_WEDGE
