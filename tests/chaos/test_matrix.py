"""Tests for the canned fault matrices and the chaos gate report.

Full-matrix replays belong to ``repro chaos`` (the CI chaos-gate job);
here we run single small scenarios and check the report machinery, so
the tier-1 suite stays fast.
"""

import json

import pytest

from repro.chaos import FaultKind, FaultPlan
from repro.chaos.matrix import (
    MATRICES,
    format_chaos_report,
    run_matrix,
    run_scenario,
)
from repro.errors import ChaosError


def scenario(name, matrix="ci"):
    for row in MATRICES[matrix]:
        if row["name"] == name:
            return row
    raise AssertionError("no scenario %r in matrix %r" % (name, matrix))


class TestMatrixDefinitions:
    def test_every_spec_parses(self):
        for rows in MATRICES.values():
            for row in rows:
                assert len(FaultPlan.parse(row["chaos"])) >= 1

    def test_ci_matrix_declares_every_kind(self):
        declared = {kind for row in MATRICES["ci"] for kind in row["kinds"]}
        assert declared == {kind.value for kind in FaultKind}

    def test_full_matrix_includes_the_10k_acceptance_replay(self):
        assert scenario("combined-10k", "full")["n_requests"] == 10_000

    def test_unknown_matrix_names_the_known_ones(self):
        with pytest.raises(ChaosError, match="ci"):
            run_matrix("bogus")


class TestRunScenario:
    def test_crash_scenario_passes_and_is_json_shaped(self):
        outcome = run_scenario(scenario("crash-failover"), seed=1234)
        json.dumps(outcome)
        assert outcome["passed"], outcome["checks"]
        assert outcome["lost"] == 0
        assert outcome["mismatched"] == 0
        assert outcome["failovers"] > 0
        assert outcome["checks"]["deterministic"]

    def test_obs_drop_scenario_passes(self):
        outcome = run_scenario(scenario("obs-drop-tolerated"), seed=1234)
        assert outcome["passed"], outcome["checks"]
        assert outcome["obs_dropped"] > 0

    def test_unfired_fault_fails_the_scenario(self):
        # A fault pinned to a replica beyond the fleet never fires; the
        # gate must flag the hole instead of passing vacuously.
        row = dict(scenario("crash-failover"),
                   name="crash-out-of-fleet", chaos="crash:replica=9",
                   expect_failovers=False)
        outcome = run_scenario(row, seed=1234)
        assert not outcome["passed"]
        assert outcome["kinds_missing"] == ["crash"]
        assert not outcome["checks"]["declared_kinds_fired"]
        assert "crash:replica=9" in outcome["unfired"]


class TestReportFormat:
    def test_format_names_every_scenario_and_verdict(self):
        outcome = run_scenario(scenario("crash-failover"), seed=1234)
        report = {
            "matrix": "ci", "seed": 1234, "scenarios": [outcome],
            "requests": outcome["requests"],
            "kinds_covered": ["crash"],
            "kinds_declared": sorted(k.value for k in FaultKind),
            "passed": outcome["passed"],
        }
        text = format_chaos_report(report)
        assert "chaos matrix 'ci' (seed 1234): PASS" in text
        assert "crash-failover" in text
        assert "fault kinds covered   : crash" in text

    def test_format_surfaces_failed_checks(self):
        row = dict(scenario("crash-failover"),
                   name="crash-out-of-fleet", chaos="crash:replica=9")
        outcome = run_scenario(row, seed=1234)
        report = {
            "matrix": "ci", "seed": 1234, "scenarios": [outcome],
            "requests": outcome["requests"], "kinds_covered": [],
            "kinds_declared": [], "passed": False,
        }
        text = format_chaos_report(report)
        assert "FAIL" in text
        assert "failed checks:" in text
        assert "declared but unfired: crash:replica=9" in text
