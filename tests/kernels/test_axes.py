"""The AXES axis-support declarations and the axes_ok admission gate.

Every backend declares which generalized problem axes (stride,
dilation, groups, layout) it serves; ``ConvBackend.supports`` chains
that declaration ahead of capability and feasibility.  These tests pin
the declared matrix, the gate's semantics, and the supports => build =>
run contract on each axis in isolation.
"""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.gpu.arch import KEPLER_K40M
from repro.kernels import ConvBackend, default_registry

#: The documented capability matrix (docs/BACKENDS.md) — a test failure
#: here means either a regression or a doc update is owed.
EXPECTED_AXES = {
    "special": (True, True, "single", ("nchw", "nhwc")),
    "general": (True, True, "single", ("nchw",)),
    "depthwise": (True, True, "depthwise", ("nchw", "nhwc")),
    "im2col": (True, True, "any", ("nchw", "nhwc")),
    "implicit-gemm": (True, True, "single", ("nchw",)),
    "naive": (True, True, "any", ("nchw", "nhwc")),
    "fft": (False, False, "single", ("nchw",)),
    "winograd": (False, False, "single", ("nchw",)),
}

#: One problem per axis, non-default in exactly that axis (except the
#: grouped ones, which need compatible channel counts).
STRIDED = ConvProblem.square(32, 3, channels=1, filters=2, stride=2)
DILATED = ConvProblem.square(33, 3, channels=1, filters=2, dilation=2)
DEPTHWISE = ConvProblem.square(24, 3, channels=4, filters=4, groups=4)
GROUPED = ConvProblem.square(24, 3, channels=8, filters=8, groups=2)
NHWC = ConvProblem.square(24, 3, channels=2, filters=2,
                          layout=Layout.NHWC)
DEFAULT = ConvProblem.square(24, 3, channels=2, filters=2)


class TestDeclaredMatrix:
    def test_every_builtin_declares_the_documented_axes(self):
        registry = default_registry()
        assert set(registry.names()) == set(EXPECTED_AXES)
        for backend in registry:
            stride, dilation, groups, layouts = EXPECTED_AXES[backend.name]
            assert backend.AXES["stride"] is stride, backend.name
            assert backend.AXES["dilation"] is dilation, backend.name
            assert backend.AXES["groups"] == groups, backend.name
            assert tuple(backend.AXES["layouts"]) == layouts, backend.name


class TestAxesOkGate:
    def test_default_axes_always_pass(self):
        for backend in default_registry():
            assert backend.axes_ok(DEFAULT), backend.name

    def test_transform_backends_reject_every_generalized_axis(self):
        registry = default_registry()
        for name in ("fft", "winograd"):
            backend = registry.get(name)
            for problem in (STRIDED, DILATED, DEPTHWISE, GROUPED, NHWC):
                assert not backend.axes_ok(problem), (name,
                                                      problem.describe())

    def test_groups_modes(self):
        registry = default_registry()
        # "single": grouped problems rejected outright.
        assert not registry.get("general").axes_ok(DEPTHWISE)
        assert not registry.get("general").axes_ok(GROUPED)
        # "depthwise": groups == channels only.
        assert registry.get("depthwise").axes_ok(DEPTHWISE)
        assert not registry.get("depthwise").axes_ok(GROUPED)
        # "any": every divisor admitted.
        assert registry.get("im2col").axes_ok(DEPTHWISE)
        assert registry.get("im2col").axes_ok(GROUPED)

    def test_layout_gate(self):
        registry = default_registry()
        assert registry.get("special").axes_ok(NHWC)
        assert not registry.get("general").axes_ok(NHWC)
        assert not registry.get("implicit-gemm").axes_ok(NHWC)

    def test_conservative_default_for_unadorned_backends(self):
        class Plain(ConvBackend):
            name = "plain"

            def build(self, problem, arch=KEPLER_K40M, config=None, **kw):
                raise AssertionError("never built")

        backend = Plain()
        assert backend.axes_ok(DEFAULT)
        for problem in (STRIDED, DILATED, DEPTHWISE, GROUPED, NHWC):
            assert not backend.axes_ok(problem)


class TestSupportsBuildRunOnNewAxes:
    """supports => build => run parity, one generalized axis at a time."""

    @pytest.mark.parametrize(
        "problem", [STRIDED, DILATED, DEPTHWISE, GROUPED, NHWC],
        ids=["stride", "dilation", "depthwise", "grouped", "nhwc"])
    def test_every_supporting_backend_builds_and_matches(self, problem):
        registry = default_registry()
        image, filters = problem.random_instance(seed=3)
        reference = conv2d_reference(image, filters, problem=problem)
        ran = []
        for backend in registry:
            if not backend.supports(problem, KEPLER_K40M):
                continue
            kernel = backend.build(
                problem, KEPLER_K40M,
                backend.configure(problem, KEPLER_K40M))
            out = kernel.run(image, filters, problem.padding,
                             problem=problem)
            np.testing.assert_allclose(
                out, reference, rtol=1e-4, atol=1e-5,
                err_msg="%s diverges on %s" % (backend.name,
                                               problem.describe()))
            ran.append(backend.name)
        assert "naive" in ran
