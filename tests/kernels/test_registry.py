"""Tests for the kernel-backend registry (repro.kernels)."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.errors import BackendError, ReproError
from repro.gpu.arch import KEPLER_K40M, PASCAL_P100
from repro.kernels import (
    BackendRegistry,
    ConvBackend,
    NaiveBackend,
    default_registry,
    register_builtin_backends,
)

BUILTIN_NAMES = ("special", "general", "im2col", "implicit-gemm", "naive",
                 "fft", "winograd", "depthwise")


@pytest.fixture
def registry():
    return register_builtin_backends(BackendRegistry())


class TestDefaultRegistry:
    def test_builtin_names_in_registration_order(self):
        assert default_registry().names() == BUILTIN_NAMES

    def test_singleton(self):
        assert default_registry() is default_registry()

    def test_iteration_and_len(self, registry):
        assert len(registry) == len(BUILTIN_NAMES)
        assert tuple(b.name for b in registry) == BUILTIN_NAMES

    def test_contains(self, registry):
        assert "fft" in registry
        assert "tensor-core" not in registry


class TestRegistration:
    def test_duplicate_name_rejected(self, registry):
        with pytest.raises(BackendError):
            registry.register(NaiveBackend())

    def test_replace_overrides(self, registry):
        replacement = NaiveBackend()
        registry.register(replacement, replace=True)
        assert registry.get("naive") is replacement

    def test_nameless_backend_rejected(self, registry):
        class Nameless(ConvBackend):
            def build(self, problem, arch=KEPLER_K40M, config=None, **kw):
                raise AssertionError("never built")

        with pytest.raises(BackendError):
            registry.register(Nameless())

    def test_unregister_fallback_rejected(self, registry):
        with pytest.raises(BackendError):
            registry.unregister("naive")

    def test_unregister_removes(self, registry):
        registry.unregister("fft")
        assert "fft" not in registry


class TestLookup:
    def test_unknown_backend_error_lists_registered_names(self, registry):
        with pytest.raises(BackendError) as err:
            registry.get("tensor-core")
        message = str(err.value)
        assert "tensor-core" in message
        for name in BUILTIN_NAMES:
            assert name in message

    def test_backend_error_is_a_repro_error(self, registry):
        with pytest.raises(ReproError):
            registry.get("nope")


class TestAvailable:
    def test_multi_channel_excludes_special(self, registry):
        p = ConvProblem.square(32, 3, channels=8, filters=8)
        names = [b.name for b in registry.available(p, KEPLER_K40M)]
        assert "special" not in names
        assert "general" in names and "naive" in names

    def test_single_channel_admits_special(self, registry):
        p = ConvProblem.square(64, 3, channels=1, filters=4)
        names = [b.name for b in registry.available(p, KEPLER_K40M)]
        assert names[0] == "special"

    def test_winograd_requires_3x3(self, registry):
        p = ConvProblem.square(32, 5, channels=4, filters=8)
        names = [b.name for b in registry.available(p, KEPLER_K40M)]
        assert "winograd" not in names

    def test_fallback_always_appended(self, registry):
        # A subset that filters to nothing still yields the fallback.
        p = ConvProblem.square(32, 3, channels=8, filters=8)
        backends = registry.available(p, KEPLER_K40M, names=("special",))
        assert [b.name for b in backends] == ["naive"]

    def test_ensure_fallback_off(self, registry):
        p = ConvProblem.square(32, 3, channels=8, filters=8)
        backends = registry.available(p, KEPLER_K40M, names=("special",),
                                      ensure_fallback=False)
        assert backends == []

    def test_names_subset_preserves_order(self, registry):
        p = ConvProblem.square(64, 3, channels=1, filters=4)
        subset = ("general", "special", "naive")
        names = [b.name for b in registry.available(p, KEPLER_K40M,
                                                    names=subset)]
        assert names == list(subset)

    def test_available_on_pascal(self, registry):
        # supports() runs against the non-Kepler preset too.
        p = ConvProblem.square(64, 3, channels=1, filters=4)
        names = [b.name for b in registry.available(p, PASCAL_P100)]
        assert "special" in names and "naive" in names


class TestObservability:
    def test_lookups_are_counted(self, registry):
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        registry.get("naive")
        with pytest.raises(BackendError):
            registry.get("nope")
        counter = get_registry().counter(
            "kernel_backend_lookups_total", "", ("backend", "outcome"))
        assert counter.value(backend="naive", outcome="hit") >= 1
        assert counter.value(backend="nope", outcome="unknown") >= 1
        reset_registry()

    def test_admissions_are_counted(self, registry):
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        p = ConvProblem.square(32, 3, channels=8, filters=8)
        registry.available(p, KEPLER_K40M)
        counter = get_registry().counter(
            "kernel_backend_candidates_total", "", ("backend", "outcome"))
        assert counter.value(backend="special", outcome="filtered") >= 1
        assert counter.value(backend="general", outcome="admitted") >= 1
        reset_registry()


class TestDispatcherIntegration:
    def test_unknown_backend_message_lists_registered(self):
        from repro.serve.dispatch import Dispatcher

        with pytest.raises(ReproError) as err:
            Dispatcher(backends=("special", "tensor-core"))
        message = str(err.value)
        assert "tensor-core" in message
        assert "registered backends" in message
        assert "im2col" in message

    def test_custom_backend_is_dispatchable(self):
        from repro.serve.dispatch import Dispatcher

        registry = register_builtin_backends(BackendRegistry())

        class EchoNaive(NaiveBackend):
            name = "echo-naive"

        registry.register(EchoNaive())
        dispatcher = Dispatcher(backends=("echo-naive",), kernels=registry)
        plan = dispatcher.plan(ConvProblem.square(16, 3, channels=2,
                                                  filters=2))
        assert plan.backend in ("echo-naive", "naive")
