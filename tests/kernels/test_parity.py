"""Registry-driven parity suite: every registered backend's ``run``
matches ``conv2d_reference`` on every shape its ``supports`` admits, and
``supports`` never admits a backend whose ``build`` then raises."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Padding
from repro.gpu.arch import KEPLER_K40M, PASCAL_P100
from repro.kernels import default_registry

#: The sweep covers the regimes the capability predicates separate:
#: C == 1 and C > 1, odd filter sizes, both padding modes, non-square
#: images, and shapes that do not divide the default tiles evenly.
SWEEP = [
    ConvProblem.square(32, 3, channels=1, filters=4),
    ConvProblem.square(33, 3, channels=1, filters=3),
    ConvProblem.square(32, 5, channels=1, filters=4),
    ConvProblem.square(24, 7, channels=1, filters=2),
    ConvProblem.square(32, 3, channels=8, filters=8),
    ConvProblem.square(21, 3, channels=3, filters=5),
    ConvProblem.square(24, 5, channels=4, filters=8),
    ConvProblem.square(32, 3, channels=1, filters=4, padding=Padding.SAME),
    ConvProblem.square(24, 5, channels=4, filters=6, padding=Padding.SAME),
    ConvProblem(height=20, width=28, channels=2, filters=4, kernel_size=3),
]

#: Transform-domain methods accumulate float32 rounding; direct-family
#: methods match tightly.
LOOSE = {"fft": (1e-3, 1e-3), "winograd": (1e-3, 1e-3)}
TIGHT = (1e-4, 1e-5)


def _sweep_ids():
    return ["%dx%d_c%d_f%d_k%d_%s" % (p.height, p.width, p.channels,
                                      p.filters, p.kernel_size,
                                      p.padding.value)
            for p in SWEEP]


@pytest.fixture(params=SWEEP, ids=_sweep_ids())
def problem(request):
    return request.param


class TestParity:
    def test_admitted_backends_match_reference(self, problem, rng):
        registry = default_registry()
        image, filters = problem.random_instance(seed=7)
        reference = conv2d_reference(image, filters, problem.padding)
        admitted = registry.available(problem, KEPLER_K40M,
                                      ensure_fallback=False)
        assert admitted, "no backend admitted %r" % (problem,)
        for backend in admitted:
            out = backend.run(image, filters, problem.padding)
            rtol, atol = LOOSE.get(backend.name, TIGHT)
            np.testing.assert_allclose(
                out, reference, rtol=rtol, atol=atol,
                err_msg="backend %r diverges on %r" % (backend.name, problem))

    def test_naive_admitted_everywhere(self, problem):
        names = [b.name for b in default_registry().available(
            problem, KEPLER_K40M)]
        assert "naive" in names


class TestSupportsBuildContract:
    @pytest.mark.parametrize("arch", [KEPLER_K40M, PASCAL_P100],
                             ids=["kepler", "pascal"])
    def test_supports_implies_build_and_cost(self, arch):
        registry = default_registry()
        for problem in SWEEP:
            for backend in registry:
                if not backend.supports(problem, arch):
                    continue
                kernel = backend.build(
                    problem, arch, backend.configure(problem, arch))
                # cost() is the cheapest full exercise of the built
                # kernel's launch/trace path.
                assert kernel.cost(problem).launch.threads_per_block > 0

    def test_unsupported_problem_not_admitted(self):
        registry = default_registry()
        # channels > 1: the special case must never be admitted.
        p = ConvProblem.square(32, 3, channels=2, filters=4)
        assert not registry.get("special").supports(p, KEPLER_K40M)
        # K != 3: Winograd must never be admitted.
        p = ConvProblem.square(32, 5, channels=1, filters=4)
        assert not registry.get("winograd").supports(p, KEPLER_K40M)
