"""Registry-driven parity suite: every registered backend's ``run``
matches ``conv2d_reference`` on every shape its ``supports`` admits, and
``supports`` never admits a backend whose ``build`` then raises."""

import numpy as np
import pytest

from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.gpu.arch import KEPLER_K40M, PASCAL_P100
from repro.kernels import default_registry

#: The sweep covers the regimes the capability predicates separate:
#: C == 1 and C > 1, odd filter sizes, both padding modes, non-square
#: images, and shapes that do not divide the default tiles evenly.
SWEEP = [
    ConvProblem.square(32, 3, channels=1, filters=4),
    ConvProblem.square(33, 3, channels=1, filters=3),
    ConvProblem.square(32, 5, channels=1, filters=4),
    ConvProblem.square(24, 7, channels=1, filters=2),
    ConvProblem.square(32, 3, channels=8, filters=8),
    ConvProblem.square(21, 3, channels=3, filters=5),
    ConvProblem.square(24, 5, channels=4, filters=8),
    ConvProblem.square(32, 3, channels=1, filters=4, padding=Padding.SAME),
    ConvProblem.square(24, 5, channels=4, filters=6, padding=Padding.SAME),
    ConvProblem(height=20, width=28, channels=2, filters=4, kernel_size=3),
]

#: Generalized-axis shapes: every non-default axis (stride, dilation,
#: groups — depthwise and plain grouped — and NHWC), alone and combined,
#: across the C == 1 / C > 1 regimes and both padding modes.
EXTENDED_SWEEP = [
    ConvProblem.square(32, 3, channels=1, filters=4, stride=2),
    ConvProblem.square(32, 3, channels=8, filters=8, stride=2,
                       padding=Padding.SAME),
    ConvProblem.square(33, 3, channels=4, filters=4, dilation=2),
    ConvProblem.square(34, 3, channels=1, filters=2, stride=3, dilation=2),
    ConvProblem.square(32, 3, channels=8, filters=16, groups=8),
    ConvProblem.square(33, 3, channels=4, filters=4, groups=4, stride=2),
    ConvProblem.square(24, 3, channels=8, filters=8, groups=2),
    ConvProblem.square(32, 3, channels=4, filters=8, layout=Layout.NHWC),
    ConvProblem.square(24, 3, channels=6, filters=6, groups=6,
                       layout=Layout.NHWC),
    ConvProblem.square(48, 3, channels=1, filters=4, layout=Layout.NHWC),
]

#: Transform-domain methods accumulate float32 rounding; direct-family
#: methods match tightly.
LOOSE = {"fft": (1e-3, 1e-3), "winograd": (1e-3, 1e-3)}
TIGHT = (1e-4, 1e-5)


def _ids(problems):
    return ["%dx%d_c%d_f%d_k%d_%s_s%d_d%d_g%d_%s"
            % (p.height, p.width, p.channels, p.filters, p.kernel_size,
               p.padding.value, p.stride, p.dilation, p.groups,
               p.layout.value)
            for p in problems]


def _sweep_ids():
    return _ids(SWEEP)


@pytest.fixture(params=SWEEP, ids=_sweep_ids())
def problem(request):
    return request.param


@pytest.fixture(params=EXTENDED_SWEEP, ids=_ids(EXTENDED_SWEEP))
def extended_problem(request):
    return request.param


class TestParity:
    def test_admitted_backends_match_reference(self, problem, rng):
        registry = default_registry()
        image, filters = problem.random_instance(seed=7)
        reference = conv2d_reference(image, filters, problem.padding)
        admitted = registry.available(problem, KEPLER_K40M,
                                      ensure_fallback=False)
        assert admitted, "no backend admitted %r" % (problem,)
        for backend in admitted:
            out = backend.run(image, filters, problem.padding)
            rtol, atol = LOOSE.get(backend.name, TIGHT)
            np.testing.assert_allclose(
                out, reference, rtol=rtol, atol=atol,
                err_msg="backend %r diverges on %r" % (backend.name, problem))

    def test_naive_admitted_everywhere(self, problem):
        names = [b.name for b in default_registry().available(
            problem, KEPLER_K40M)]
        assert "naive" in names


class TestExtendedAxisParity:
    """The same registry-driven contract over the generalized axes:
    every backend admitted for a strided / dilated / grouped / NHWC
    problem must match the generalized reference."""

    def test_admitted_backends_match_reference(self, extended_problem):
        problem = extended_problem
        registry = default_registry()
        image, filters = problem.random_instance(seed=11)
        reference = conv2d_reference(image, filters, problem=problem)
        admitted = registry.available(problem, KEPLER_K40M,
                                      ensure_fallback=False)
        assert admitted, "no backend admitted %s" % problem.describe()
        for backend in admitted:
            out = backend.run(image, filters, problem=problem)
            rtol, atol = LOOSE.get(backend.name, TIGHT)
            np.testing.assert_allclose(
                out, reference, rtol=rtol, atol=atol,
                err_msg="backend %r diverges on %s"
                        % (backend.name, problem.describe()))

    def test_depthwise_admitted_for_depthwise_shapes(self, extended_problem):
        problem = extended_problem
        names = [b.name for b in default_registry().available(
            problem, KEPLER_K40M, ensure_fallback=False)]
        is_depthwise = (problem.groups == problem.channels
                        and problem.channels > 1)
        assert ("depthwise" in names) == is_depthwise

    def test_transform_backends_never_admitted(self, extended_problem):
        names = [b.name for b in default_registry().available(
            extended_problem, KEPLER_K40M, ensure_fallback=False)]
        assert "fft" not in names and "winograd" not in names


class TestSupportsBuildContract:
    @pytest.mark.parametrize("arch", [KEPLER_K40M, PASCAL_P100],
                             ids=["kepler", "pascal"])
    def test_supports_implies_build_and_cost(self, arch):
        registry = default_registry()
        for problem in SWEEP + EXTENDED_SWEEP:
            for backend in registry:
                if not backend.supports(problem, arch):
                    continue
                kernel = backend.build(
                    problem, arch, backend.configure(problem, arch))
                # cost() is the cheapest full exercise of the built
                # kernel's launch/trace path.
                assert kernel.cost(problem).launch.threads_per_block > 0

    def test_unsupported_problem_not_admitted(self):
        registry = default_registry()
        # channels > 1: the special case must never be admitted.
        p = ConvProblem.square(32, 3, channels=2, filters=4)
        assert not registry.get("special").supports(p, KEPLER_K40M)
        # K != 3: Winograd must never be admitted.
        p = ConvProblem.square(32, 5, channels=1, filters=4)
        assert not registry.get("winograd").supports(p, KEPLER_K40M)
