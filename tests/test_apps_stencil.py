"""Tests for the Jacobi stencil application."""

import numpy as np
import pytest

from repro.apps.stencil import FIVE_POINT, NINE_POINT, JacobiStencil
from repro.errors import ConfigurationError, ShapeError
from repro.gpu.arch import FERMI_M2090


class TestNumerics:
    def test_five_point_single_sweep_by_hand(self):
        grid = np.zeros((5, 5), dtype=np.float32)
        grid[2, 2] = 4.0
        out = JacobiStencil().run(grid, iterations=1)
        # The hot cell's value spreads to its four neighbours...
        assert out[1, 2] == pytest.approx(1.0)
        assert out[2, 1] == pytest.approx(1.0)
        # ...and the centre relaxes to the average of its (zero) ring.
        assert out[2, 2] == pytest.approx(0.0)

    def test_borders_are_dirichlet(self):
        grid = np.zeros((6, 6), dtype=np.float32)
        grid[0, :] = 1.0
        out = JacobiStencil().run(grid, iterations=3)
        np.testing.assert_array_equal(out[0], np.ones(6))
        np.testing.assert_array_equal(out[-1], np.zeros(6))

    def test_converges_to_laplace_solution(self):
        # Hot top edge, cold elsewhere: converges to the discrete
        # harmonic function; residual must shrink monotonically.
        rng = np.random.default_rng(0)
        grid = rng.standard_normal((16, 16)).astype(np.float32)
        grid[0, :] = 1.0
        grid[-1, :] = 0.0
        stencil = JacobiStencil()
        r0 = stencil.residual(grid)
        relaxed = stencil.run(grid, iterations=50)
        r1 = stencil.residual(relaxed)
        assert r1 < r0 / 5

    def test_nine_point_weights_normalized(self):
        assert FIVE_POINT.sum() == pytest.approx(1.0)
        assert NINE_POINT.sum() == pytest.approx(1.0)

    def test_nine_point_runs(self):
        grid = np.zeros((8, 8), dtype=np.float32)
        grid[4, 4] = 1.0
        out = JacobiStencil(points=9).run(grid, iterations=2)
        assert out[3, 3] > 0  # diagonal neighbours now participate

    def test_zero_iterations_identity(self, rng):
        grid = rng.standard_normal((10, 10)).astype(np.float32)
        np.testing.assert_array_equal(JacobiStencil().run(grid, 0), grid)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            JacobiStencil(points=7)
        with pytest.raises(ShapeError):
            JacobiStencil().run(np.zeros((2, 3, 4)))
        with pytest.raises(ConfigurationError):
            JacobiStencil().run(np.zeros((4, 4)), iterations=-1)


class TestCostModel:
    def test_cost_scales_with_iterations(self):
        stencil = JacobiStencil()
        one = stencil.cost(1024, 1024, iterations=1)
        ten = stencil.cost(1024, 1024, iterations=10)
        assert ten.flops == pytest.approx(10 * one.flops)
        assert ten.launches == 10

    def test_matched_beats_unmatched_in_smem(self):
        matched = JacobiStencil().cost(2048, 2048, 4).ledger
        unmatched = JacobiStencil(matched=False).cost(2048, 2048, 4).ledger
        assert matched.smem_cycles < unmatched.smem_cycles

    def test_updates_per_second_order_of_magnitude(self):
        # A memory-bound 3x3 stencil on ~216 GB/s moves >= 8 bytes per
        # update: tens of GUPS is the right scale.
        gups = JacobiStencil().updates_per_second(4096, 4096) / 1e9
        assert 1.0 < gups < 60.0

    def test_fermi_runs_scalar(self):
        stencil = JacobiStencil(arch=FERMI_M2090)
        assert stencil.kernel.n == 1
        assert stencil.predict(1024, 1024).total > 0

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            JacobiStencil().cost(64, 64, iterations=0)
