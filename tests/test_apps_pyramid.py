"""Tests for the Gaussian/Laplacian pyramid application."""

import numpy as np
import pytest

from repro.apps.pyramid import BINOMIAL_5X5, GaussianPyramid
from repro.errors import ConfigurationError, ShapeError


@pytest.fixture
def pyramid():
    return GaussianPyramid(levels=3)


@pytest.fixture
def image(rng):
    return rng.standard_normal((128, 160)).astype(np.float32)


class TestFilter:
    def test_binomial_normalized(self):
        assert BINOMIAL_5X5.sum() == pytest.approx(1.0)

    def test_binomial_separable_and_symmetric(self):
        np.testing.assert_allclose(BINOMIAL_5X5, BINOMIAL_5X5.T)
        # Rank 1: it is an outer product.
        assert np.linalg.matrix_rank(BINOMIAL_5X5) == 1


class TestGaussian:
    def test_level_shapes_halve(self, pyramid, image):
        levels = pyramid.gaussian(image)
        assert [lv.shape for lv in levels] == [(128, 160), (64, 80), (32, 40)]

    def test_dc_preserved(self, pyramid):
        flat = np.full((64, 64), 3.25, dtype=np.float32)
        for level in pyramid.gaussian(flat):
            np.testing.assert_allclose(level[2:-2, 2:-2], 3.25, atol=1e-4)

    def test_smoothing_reduces_variance(self, pyramid, image):
        levels = pyramid.gaussian(image)
        assert np.var(levels[1]) < np.var(levels[0])

    def test_too_small_image_rejected(self, pyramid):
        with pytest.raises(ConfigurationError):
            pyramid.gaussian(np.zeros((16, 16), dtype=np.float32))

    def test_non_2d_rejected(self, pyramid):
        with pytest.raises(ShapeError):
            pyramid.gaussian(np.zeros((3, 64, 64), dtype=np.float32))


class TestLaplacian:
    def test_reconstruction_is_exact(self, pyramid, image):
        bands = pyramid.laplacian(image)
        recon = pyramid.reconstruct(bands)
        np.testing.assert_allclose(recon, image, atol=1e-5)

    def test_band_count(self, pyramid, image):
        assert len(pyramid.laplacian(image)) == 3

    def test_bands_are_bandpass(self, pyramid, image):
        bands = pyramid.laplacian(image)
        # Residual bands have near-zero mean (the DC lives in the tail).
        assert abs(float(bands[0].mean())) < 0.1

    def test_wrong_band_count_rejected(self, pyramid, image):
        bands = pyramid.laplacian(image)
        with pytest.raises(ShapeError):
            pyramid.reconstruct(bands[:-1])


class TestCost:
    def test_geometric_series_bound(self):
        """Levels shrink 4x each: total cost < 4/3 of level 0 + slack."""
        pyr = GaussianPyramid(levels=5)
        total = pyr.cost(1024, 1024)
        level0 = pyr.kernel.cost(pyr.level_problems(1024, 1024)[0])
        assert total.flops < 1.40 * level0.flops
        assert total.launches == 4

    def test_level_problems_shapes(self):
        pyr = GaussianPyramid(levels=3)
        ps = pyr.level_problems(100, 200)
        assert [(p.height, p.width) for p in ps] == [(100, 200), (50, 100)]

    def test_throughput_scale(self):
        mps = GaussianPyramid(levels=4).megapixels_per_second(2048, 2048)
        # Memory-bound 5x5 smoothing: thousands of MP/s on 216 GB/s.
        assert 500 < mps < 50000

    def test_single_level_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            GaussianPyramid(levels=1).cost(64, 64)

    def test_invalid_levels(self):
        with pytest.raises(ConfigurationError):
            GaussianPyramid(levels=0)
