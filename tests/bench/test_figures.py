"""Tests for the experiment builders: every figure regenerates with the
paper's qualitative shape.

These are the repository's statement of reproduction: each test asserts
the *direction and rough magnitude* the paper reports, not absolute
GFlop/s (our substrate is a simulator, not the authors' K40m).
"""

import numpy as np
import pytest

from repro.bench.figures import (
    ALL_EXPERIMENTS,
    ablation_adaptive_config,
    ablation_bank_policy,
    ablation_prefetch,
    ablation_thread_layout,
    ablation_unmatched,
    ablation_writeback,
    extension_all_methods,
    extension_fft_batch,
    extension_fp16_conv,
    extension_short_dtypes,
    extension_stencil,
    extension_training,
    fig1_bank_patterns,
    fig2_gemm,
    fig7_special,
    fig8_general,
)


class TestFig1:
    def test_paper_policy_shows_serialization(self):
        exp = fig1_bank_patterns()
        paper_row = next(r for r in exp.rows if "paper" in r.label)
        assert paper_row.values["conventional"] == 2.0
        assert paper_row.values["matched"] == 1.0

    def test_word_merge_hides_it_in_cycles(self):
        exp = fig1_bank_patterns()
        merge_row = next(r for r in exp.rows if "word-merge" in r.label)
        assert merge_row.values["conventional"] == 1.0


class TestFig2:
    def test_kepler_ordering(self):
        exp = fig2_gemm()
        for row in exp.rows:
            assert row.values["cuBLAS"] < row.values["MAGMA mod."]
            assert row.values["MAGMA mod."] < row.values["MAGMA"]

    def test_magma_slowdown_factor(self):
        exp = fig2_gemm()
        mean = exp.mean_ratio("MAGMA", "cuBLAS")
        assert 1.6 < mean < 3.2  # paper: 2.4x

    def test_matching_savings(self):
        exp = fig2_gemm()
        savings = [1 - r.values["MAGMA mod."] / r.values["MAGMA"]
                   for r in exp.rows]
        assert 0.25 < np.mean(savings) < 0.55  # paper: 36%

    def test_time_monotone_in_dimension(self):
        exp = fig2_gemm()
        times = exp.series("cuBLAS")
        assert times == sorted(times)


class TestFig7:
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_ours_wins_on_average(self, k):
        exp = fig7_special(k)
        assert exp.mean_ratio("ours", "cuDNN") > 2.0

    def test_f1_rows_win_by_more_than_10x(self):
        exp = fig7_special(3)
        for row in exp.rows:
            if "F=1" in row.label and "N=512" not in row.label:
                assert row.ratio("ours", "cuDNN") > 10.0

    def test_unmatched_penalty_on_large_f(self):
        exp = fig7_special(3)
        penalties = [
            1 - r.values["unmatched"] / r.values["ours"]
            for r in exp.rows if "F=32" in r.label
        ]
        # Paper: 19% slower on average for the 3x3 filter.
        assert 0.05 < np.mean(penalties) < 0.30

    def test_average_gain_in_paper_regime(self):
        means = [fig7_special(k).mean_ratio("ours", "cuDNN") for k in (1, 3, 5)]
        overall = np.mean(means)
        # Paper: 5.16x average.  Accept the same order of magnitude.
        assert 3.0 < overall < 12.0


class TestFig8:
    @pytest.mark.parametrize("k", [3, 5, 7])
    def test_ours_wins_on_average(self, k):
        exp = fig8_general(k)
        mean_gain = exp.mean_ratio("ours", "cuDNN") - 1
        # Paper: 30.5% / 45.3% / 30.8%.
        assert 0.10 < mean_gain < 0.80

    def test_overall_average_improvement(self):
        means = [fig8_general(k).mean_ratio("ours", "cuDNN") for k in (3, 5, 7)]
        overall = np.mean(means) - 1
        assert 0.20 < overall < 0.55  # paper: 35.5%

    def test_losses_only_at_smaller_images(self):
        # Paper: losses only at 32x32 ("may be a little slower").  Our
        # model agrees for K=3 (0.99x at 32x32) and additionally loses
        # up to ~35% at 32x32 / ~12% at 64x64 for the big filters,
        # where the paper's fixed Table-1 tiles (W=64 for K=7) cannot
        # tile a 26-pixel output without massive overcompute; see
        # EXPERIMENTS.md.
        for k in (3, 5, 7):
            exp = fig8_general(k)
            for row in exp.rows:
                ratio = row.ratio("ours", "cuDNN")
                if ratio < 0.95:
                    assert "N=32," in row.label or "N=64," in row.label
                    assert ratio > (0.60 if "N=32," in row.label else 0.85)

    def test_peak_performance_near_half_machine_peak(self):
        exp = fig8_general(3)
        peak = max(exp.series("ours"))
        # Paper: 2020 GFlop/s (47% of 4290).
        assert 1700 < peak < 3000


class TestAblations:
    def test_unmatched_general_degrades(self):
        exp = ablation_unmatched()
        for row in exp.rows:
            assert row.values["unmatched"] < row.values["matched"]

    def test_bank_policy_doubles_unmatched_serialization(self):
        exp = ablation_bank_policy()
        unmatched = next(r for r in exp.rows if r.label == "unmatched")
        assert unmatched.values["paper-policy"] == pytest.approx(2.0, rel=0.01)
        assert unmatched.values["word-merge"] == pytest.approx(1.0, rel=0.01)

    def test_writeback_time_share_small(self):
        exp = ablation_writeback()
        for row in exp.rows:
            assert row.values["write share"] < 10.0  # "very little time"

    def test_prefetch_helps_at_low_occupancy(self):
        exp = ablation_prefetch()
        low = next(r for r in exp.rows if "low-occupancy" in r.label)
        assert low.values["prefetch"] > low.values["no prefetch"]

    def test_thread_layout_factors_below_half(self):
        exp = ablation_thread_layout()
        for row in exp.rows:
            assert row.values["(WT+K-1)/(WT*K)"] < 0.5


class TestExtensions:
    def test_short_dtypes_gain_on_both_archs(self):
        exp = extension_short_dtypes()
        half = next(r for r in exp.rows if r.label == "half")
        assert half.values["Kepler K40m"] == pytest.approx(4.0)
        assert half.values["Maxwell GM204"] == pytest.approx(2.0)
        flt = next(r for r in exp.rows if r.label == "float")
        assert flt.values["Maxwell GM204"] == pytest.approx(1.0)

    def test_all_methods_ordering(self):
        exp = extension_all_methods()
        for row in exp.rows:
            assert row.values["ours"] > row.values["naive"]
            assert row.values["ours"] > row.values["FFT"]


class TestNewExtensions:
    def test_dtype_conv_penalty_escalates(self):
        exp = extension_fp16_conv()
        pens = [r.values["penalty %"] for r in exp.rows]
        assert pens == sorted(pens)
        assert pens[-1] > 50

    def test_adaptive_config_dominates_fixed(self):
        exp = ablation_adaptive_config()
        for row in exp.rows:
            assert row.values["adaptive"] >= 0.999 * row.values["fixed"]

    def test_stencil_matched_wins(self):
        exp = extension_stencil()
        for row in exp.rows:
            assert row.values["matched"] >= row.values["unmatched"]

    def test_training_table_complete(self):
        exp = extension_training()
        assert len(exp.rows) == 3
        for row in exp.rows:
            assert set(row.values) == {"forward", "dgrad", "wgrad"}

    def test_fft_batch_crossover_exists(self):
        exp = extension_fft_batch()
        ratios = exp.ratios("FFT", "ours")
        assert ratios[0] < 1.0 < ratios[-1]


class TestRegistry:
    def test_all_experiments_buildable_ids(self):
        assert "fig2" in ALL_EXPERIMENTS and "table1" in ALL_EXPERIMENTS
        assert len(ALL_EXPERIMENTS) >= 21
