"""Tests for the experiment runner and reporting."""

import pytest

from repro.bench.report import format_experiment, format_summary_line, summarize_ratio
from repro.bench.runner import ComparisonRow, Experiment, compare_on_sweep
from repro.conv.workloads import WorkloadPoint
from repro.conv.tensors import ConvProblem
from repro.errors import ReproError


def make_experiment():
    exp = Experiment(exp_id="x", title="t", unit="u", columns=["a", "b"])
    exp.add("p1", {"a": 2.0, "b": 1.0})
    exp.add("p2", {"a": 6.0, "b": 2.0})
    return exp


class TestExperiment:
    def test_series(self):
        exp = make_experiment()
        assert exp.series("a") == [2.0, 6.0]

    def test_ratios_and_mean(self):
        exp = make_experiment()
        assert exp.ratios("a", "b") == [2.0, 3.0]
        assert exp.mean_ratio("a", "b") == pytest.approx(2.5)

    def test_missing_column_rejected(self):
        exp = Experiment(exp_id="x", title="t", unit="u", columns=["a", "b"])
        with pytest.raises(ReproError):
            exp.add("p", {"a": 1.0})

    def test_zero_denominator_rejected(self):
        row = ComparisonRow(label="p", values={"a": 1.0, "b": 0.0})
        with pytest.raises(ReproError):
            row.ratio("a", "b")

    def test_zero_denominator_error_names_the_columns(self):
        """The message must identify which ratio failed, not just the
        row — a sweep row holds one value per method."""
        row = ComparisonRow(label="N=512",
                            values={"ours": 1.0, "cuDNN": 0.0})
        with pytest.raises(ReproError) as excinfo:
            row.ratio("ours", "cuDNN")
        message = str(excinfo.value)
        assert "ours" in message
        assert "cuDNN" in message
        assert "N=512" in message


class TestCompareOnSweep:
    def test_uses_gflops_by_default(self):
        class Fake:
            def gflops(self, problem):
                return float(problem.filters)

        pts = [
            WorkloadPoint("w1", ConvProblem.square(16, 3, filters=2)),
            WorkloadPoint("w2", ConvProblem.square(16, 3, filters=4)),
        ]
        rows = compare_on_sweep({"f": Fake()}, pts)
        assert [r.values["f"] for r in rows] == [2.0, 4.0]

    def test_custom_metric(self):
        pts = [WorkloadPoint("w", ConvProblem.square(16, 3))]
        rows = compare_on_sweep({"k": object()}, pts,
                                metric=lambda kern, p: 42.0)
        assert rows[0].values["k"] == 42.0


class TestReport:
    def test_format_contains_all_rows_and_columns(self):
        text = format_experiment(make_experiment())
        assert "p1" in text and "p2" in text
        assert "a" in text and "b" in text
        assert "[u]" in text

    def test_format_respects_precision(self):
        text = format_experiment(make_experiment(), precision=3)
        assert "2.000" in text

    def test_summarize_ratio(self):
        s = summarize_ratio(make_experiment(), "a", "b")
        assert s["mean"] == pytest.approx(2.5)
        assert s["min"] == 2.0 and s["max"] == 3.0 and s["n"] == 2

    def test_summary_line_includes_paper_value(self):
        line = format_summary_line(make_experiment(), "a", "b", paper_value="9x")
        assert "9x" in line and "2.50x" in line


class TestSerialization:
    def test_csv_roundtrippable_structure(self):
        exp = make_experiment()
        text = exp.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "workload,a,b"
        assert lines[1].startswith("p1,")
        assert len(lines) == 3

    def test_json_roundtrip(self):
        from repro.bench.runner import Experiment

        exp = make_experiment()
        exp.paper_expectation = "2x"
        exp.notes = "n/a"
        back = Experiment.from_json(exp.to_json())
        assert back.exp_id == exp.exp_id
        assert back.columns == exp.columns
        assert back.rows[1].values == exp.rows[1].values
        assert back.paper_expectation == "2x"

    def test_csv_uses_unix_line_terminators(self):
        """csv.writer defaults to \\r\\n on every platform; the artifact
        format pins \\n so committed CSVs diff cleanly across OSes."""
        text = make_experiment().to_csv()
        assert "\r" not in text
        assert text.endswith("\n")
        assert text.count("\n") == 3

    def test_json_roundtrip_preserves_all_metadata(self):
        """Regression: a serialized experiment must survive
        to_json -> from_json with every field intact, including the
        free-text notes and paper_expectation metadata the
        regression-pinning workflow relies on."""
        from repro.bench.runner import Experiment

        exp = make_experiment()
        exp.paper_expectation = "matched pattern doubles SM bandwidth"
        exp.notes = "K=3 explored: W32 H4 FTB64 WT16 FT4 CSH2"
        back = Experiment.from_json(exp.to_json())
        assert back == exp
        assert back.notes == exp.notes
        assert back.paper_expectation == exp.paper_expectation

    def test_json_roundtrip_tolerates_missing_optional_metadata(self):
        import json as jsonlib

        from repro.bench.runner import Experiment

        data = jsonlib.loads(make_experiment().to_json())
        del data["notes"]
        del data["paper_expectation"]
        back = Experiment.from_json(jsonlib.dumps(data))
        assert back.notes == ""
        assert back.paper_expectation == ""

    def test_markdown_rendering(self):
        from repro.bench.report import format_experiment_markdown

        exp = make_experiment()
        md = format_experiment_markdown(exp, precision=2)
        assert "| workload | a | b |" in md
        assert "| p1 | 2.00 | 1.00 |" in md
        assert md.startswith("### x")
