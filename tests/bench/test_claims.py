"""Tests for the paper-claims verifier."""

import pytest

from repro.bench.claims import (
    PAPER_CLAIMS,
    ClaimResult,
    format_claim_results,
    verify_claims,
)


class TestRegistry:
    def test_claims_cover_every_results_section(self):
        sections = " ".join(c.section for c in PAPER_CLAIMS)
        for needle in ("2.1", "3.2", "4.2", "5.1", "5.2", "6", "Table 1"):
            assert needle in sections

    def test_ids_unique(self):
        ids = [c.claim_id for c in PAPER_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_at_least_a_dozen_claims(self):
        assert len(PAPER_CLAIMS) >= 12


class TestVerification:
    def test_subset_selection(self):
        pairs = verify_claims(["bankwidth-gain", "sm-reduction"])
        assert len(pairs) == 2
        assert all(r.supported for _, r in pairs)

    def test_unknown_ids_yield_empty(self):
        assert verify_claims(["nonexistent"]) == []

    def test_fast_claims_all_supported(self):
        fast = ["bankwidth-gain", "magma-slowdown", "magma-saving",
                "f1-speedup", "unmatched-penalty", "small-image-caveat",
                "gm-optimality", "writeback-cheap", "sm-reduction",
                "short-dtypes"]
        pairs = verify_claims(fast)
        assert len(pairs) == len(fast)
        for claim, result in pairs:
            assert result.supported, claim.claim_id


class TestFormatting:
    def test_table_contains_verdicts(self):
        pairs = [(PAPER_CLAIMS[0], ClaimResult(measured="2.00x", supported=True)),
                 (PAPER_CLAIMS[1], ClaimResult(measured="9x", supported=False,
                                               note="why"))]
        text = format_claim_results(pairs)
        assert "SUPPORTED" in text and "DIVERGES" in text
        assert "note: why" in text
        assert "1/2 claims supported" in text


class TestCli:
    def test_cli_claims_subset(self, capsys):
        from repro.cli import main

        assert main(["claims", "bankwidth-gain", "sm-reduction"]) == 0
        out = capsys.readouterr().out
        assert "2/2 claims supported" in out

    def test_cli_unknown_claim(self, capsys):
        from repro.cli import main

        assert main(["claims", "bogus"]) == 2
