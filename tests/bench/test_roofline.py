"""Tests for the roofline analysis module."""

import pytest

from repro.baselines.direct_naive import NaiveDirectKernel
from repro.baselines.implicit_gemm import ImplicitGemmKernel
from repro.bench.roofline import RooflinePoint, roofline_point, roofline_report
from repro.conv.tensors import ConvProblem
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel


@pytest.fixture
def layer():
    return ConvProblem.square(128, 3, channels=64, filters=128)


class TestRooflinePoint:
    def test_achieved_below_roof(self, layer):
        for kernel in (GeneralCaseKernel(), ImplicitGemmKernel(),
                       NaiveDirectKernel()):
            pt = roofline_point(kernel, layer)
            assert pt.achieved_gflops <= pt.roof_gflops * 1.02
            assert 0.0 < pt.roof_fraction <= 1.02

    def test_naive_is_memory_bound(self, layer):
        pt = roofline_point(NaiveDirectKernel(), layer)
        assert pt.bound == "memory"
        assert pt.intensity < 14.0  # left of the Kepler ridge

    def test_general_kernel_is_compute_bound(self, layer):
        pt = roofline_point(GeneralCaseKernel(), layer)
        assert pt.bound == "compute"
        assert pt.roof_fraction > 0.7

    def test_special_kernel_memory_bound(self):
        p = ConvProblem.square(1024, 3, channels=1, filters=8)
        pt = roofline_point(SpecialCaseKernel(), p)
        assert pt.bound == "memory"

    def test_ours_closer_to_its_roof_than_cudnn(self, layer):
        ours = roofline_point(GeneralCaseKernel(), layer)
        cudnn = roofline_point(ImplicitGemmKernel(), layer)
        assert ours.roof_fraction > cudnn.roof_fraction


class TestReport:
    def test_report_lists_all_kernels(self, layer):
        text = roofline_report(
            {"ours": GeneralCaseKernel(), "naive": NaiveDirectKernel()}, layer)
        assert "ours" in text and "naive" in text
        assert "ridge" in text

    def test_report_mentions_machine_roofs(self, layer):
        text = roofline_report({"ours": GeneralCaseKernel()}, layer)
        assert "Kepler" in text
        assert "GB/s" in text
