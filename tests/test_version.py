"""Guard against version drift between pyproject.toml and the package.

PR 3 healed a 1.1.0/1.2.0 drift by hand; this pins the two declarations
together so the next bump cannot half-land.  The parse is regex-based
(not tomllib) so it runs on every supported interpreter.
"""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def _pyproject_version() -> str:
    match = re.search(r'^version = "([^"]+)"', PYPROJECT.read_text(),
                      flags=re.MULTILINE)
    assert match, "no version line in pyproject.toml"
    return match.group(1)


def test_package_version_matches_pyproject():
    assert repro.__version__ == _pyproject_version()


def test_version_is_semver_shaped():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
