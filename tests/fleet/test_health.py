"""Tests for circuit breakers, health tracking, and degradation."""

import pytest

from repro.errors import ReproError
from repro.fleet import DEGRADATION_LEVELS, CircuitBreaker, HealthTracker
from repro.obs.metrics import Registry


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=1.0)
        assert breaker.record_failure(0.0) is None
        assert breaker.record_failure(0.0) is None
        assert breaker.record_failure(0.0) == "open"
        assert not breaker.allow(0.5)

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=1.0)
        breaker.record_failure(0.0)
        breaker.record_success(0.0)
        assert breaker.record_failure(0.0) is None
        assert breaker.state(0.0) == "closed"

    def test_half_open_after_cooldown_then_probe_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.5) == "open"
        assert breaker.state(1.0) == "half-open"
        assert breaker.allow(1.0)
        assert breaker.record_success(1.0) == "closed"

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(1.0) == "half-open"
        assert breaker.record_failure(1.0) == "open"
        assert breaker.state(1.5) == "open"
        assert breaker.state(2.0) == "half-open"

    def test_validation(self):
        with pytest.raises(ReproError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ReproError):
            CircuitBreaker(cooldown_s=0.0)


class TestHealthTracker:
    def tracker(self, registry=None, **kwargs):
        return HealthTracker(4, registry=registry, **kwargs)

    def test_failures_and_failovers_counted_by_reason(self):
        registry = Registry()
        health = self.tracker(registry)
        health.record_failure(1, "crash", 0.0)
        health.record_failure(1, "wedge", 0.0)
        health.record_failover("crash")
        assert health.failures == 2
        assert health.failovers == 1
        stats = health.stats(0.0)
        assert stats["failures_by_reason"] == {"1/crash": 1, "1/wedge": 1}
        assert stats["failovers_by_reason"] == {"crash": 1}
        assert registry.get("fleet_failovers_total").total() == 1

    def test_breaker_state_gauge_and_transitions(self):
        registry = Registry()
        health = self.tracker(registry, failure_threshold=2)
        health.record_failure(0, "crash", 0.0)
        health.record_failure(0, "crash", 0.0)
        assert registry.get("fleet_breaker_state").value(replica="0") == 2
        assert registry.get(
            "fleet_breaker_transitions_total").value(replica="0", to="open") == 1

    def test_degradation_levels(self):
        health = self.tracker(failure_threshold=1, cooldown_s=10.0)
        assert health.degradation(0.0) == "healthy"
        health.record_failover("crash")
        assert health.degradation(0.0) == "degraded"
        health.record_failure(0, "crash", 0.0)
        health.record_failure(1, "crash", 0.0)
        # 2 of 4 breakers open: half the fleet is down -> critical.
        assert health.degradation(0.0) == "critical"
        assert health.degradation(0.0) in DEGRADATION_LEVELS

    def test_begin_replay_clears_failover_degradation(self):
        health = self.tracker()
        health.record_failover("wedge")
        assert health.degradation(0.0) == "degraded"
        health.begin_replay()
        assert health.degradation(0.0) == "healthy"

    def test_open_breaker_recovers_through_virtual_time(self):
        health = self.tracker(failure_threshold=1, cooldown_s=0.05)
        health.record_failure(2, "crash", 0.0)
        assert not health.allow(2, 0.01)
        assert health.allow(2, 0.06)          # half-open probe allowed
        health.record_success(2, 0.06)
        assert health.states(0.06)[2] == "closed"

    def test_stats_are_json_shaped(self):
        import json

        health = self.tracker()
        health.record_failure(0, "crash", 0.0)
        health.record_hedge()
        health.record_obs_drop()
        snap = health.stats(0.0)
        json.dumps(snap)
        assert snap["hedges"] == 1
        assert snap["obs_dropped"] == 1
        assert snap["breakers"]["0"] == "closed"
