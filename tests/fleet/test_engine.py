"""Tests for the fleet engine: determinism, shedding, SLOs, telemetry."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.fleet import (
    MAX_QUEUE_DEPTH,
    MAX_REPLICAS,
    FleetConfig,
    FleetEngine,
    SharedPlanCache,
    check_queue_depth,
    check_replicas,
)
from repro.obs.metrics import Registry
from repro.obs.tracing import Tracer
from repro.serve import ServeEngine, synthetic_trace


def trace(n=120, seed=5, **kwargs):
    return synthetic_trace(n, seed=seed, **kwargs)


def fleet(replicas=4, tracer=None, shared_cache=None, **kwargs):
    return FleetEngine(FleetConfig(replicas=replicas, **kwargs),
                       tracer=tracer, shared_cache=shared_cache)


class TestValidation:
    def test_replica_bounds_named_in_error(self):
        for bad in (0, -1, MAX_REPLICAS + 1, "4"):
            with pytest.raises(ReproError, match="1..%d" % MAX_REPLICAS):
                check_replicas(bad)
        assert check_replicas(MAX_REPLICAS) == MAX_REPLICAS

    def test_queue_depth_bounds_named_in_error(self):
        for bad in (0, MAX_QUEUE_DEPTH + 1):
            with pytest.raises(ReproError, match="1..%d" % MAX_QUEUE_DEPTH):
                check_queue_depth(bad)
        assert check_queue_depth(1) == 1

    def test_config_validates_on_construction(self):
        with pytest.raises(ReproError):
            FleetConfig(replicas=0)
        with pytest.raises(ReproError):
            FleetConfig(queue_depth=0)

    def test_duplicate_request_ids_rejected(self):
        reqs = trace(4)
        reqs[1].req_id = reqs[0].req_id
        with pytest.raises(ReproError, match="unique"):
            fleet().serve_trace(reqs)


class TestDeterminism:
    def test_fleet_matches_serial_single_engine_bitwise(self):
        reqs = trace(150)
        result = fleet(replicas=4).serve_trace(reqs)
        serial = ServeEngine().serve_trace(trace(150))
        assert result.served == len(reqs)
        for got, want in zip(result.responses, serial):
            assert got.req_id == want.req_id
            assert got.backend == want.backend
            assert np.array_equal(got.output, want.output)

    def test_jobs_degree_does_not_change_results(self):
        a = fleet(replicas=3, jobs=1).serve_trace(trace(80))
        b = fleet(replicas=3, jobs=2).serve_trace(trace(80))
        for x, y in zip(a.responses, b.responses):
            assert x.backend == y.backend
            assert np.array_equal(x.output, y.output)
        assert a.assignments == b.assignments

    def test_replay_is_reproducible(self):
        a = fleet(replicas=4).serve_trace(trace(60))
        b = fleet(replicas=4).serve_trace(trace(60))
        assert a.assignments == b.assignments
        for x, y in zip(a.responses, b.responses):
            assert np.array_equal(x.output, y.output)


class TestRoutingAndShedding:
    def test_same_shape_lands_on_one_replica(self):
        reqs = trace(60)
        result = fleet(replicas=4).serve_trace(reqs)
        homes = {}
        for request, replica in zip(reqs, result.assignments):
            homes.setdefault(request.problem, set()).add(replica)
        assert all(len(replicas) == 1 for replicas in homes.values())

    def test_tiny_queue_sheds_and_aligns_responses(self):
        # rate 0: every request arrives at t=0, so a bound of 1 admits
        # one request per distinct home replica and sheds the rest.
        reqs = trace(40, rate_hz=None)
        result = fleet(replicas=2, queue_depth=1).serve_trace(reqs)
        assert result.shed_count > 0
        assert result.served + result.shed_count == len(reqs)
        shed_ids = {record.req_id for record in result.shed}
        for request, response in zip(reqs, result.responses):
            if request.req_id in shed_ids:
                assert response is None
            else:
                assert response is not None
        assert all(record.reason == "overload" for record in result.shed)

    def test_expired_deadlines_are_shed_not_served(self):
        reqs = trace(10, deadline_budget_s=0.0)
        result = fleet(replicas=2).serve_trace(reqs)
        assert result.served == 0
        assert result.shed_count == len(reqs)
        assert all(record.reason == "expired" for record in result.shed)


class TestSLOAccounting:
    def test_deadline_misses_counted(self):
        # A deadline budget shorter than the batching deadline cannot be
        # met by flushed-at-deadline batches: misses must be non-zero.
        engine = fleet(replicas=2)
        result = engine.serve_trace(trace(60, deadline_budget_s=2e-4))
        snap = engine.stats()
        assert result.served > 0
        assert snap["deadline_misses"] > 0
        assert snap["deadline_miss_rate"] > 0
        per_replica = sum(block["deadline_misses"]
                          for block in snap["replicas"].values())
        assert per_replica == snap["deadline_misses"]

    def test_stats_snapshot_shape(self):
        engine = fleet(replicas=2)
        engine.serve_trace(trace(40))
        snap = engine.stats()
        for key in ("served", "latency_p50_s", "latency_p95_s",
                    "latency_p99_s", "deadline_misses", "sustained_rps",
                    "modeled_makespan_s", "admission", "router",
                    "shared_plan_cache", "replicas"):
            assert key in snap
        assert snap["served"] == 40
        assert snap["router"]["affinity_hit_rate"] == 1.0
        assert snap["admission"]["shed"] == 0
        served_blocks = [block for block in snap["replicas"].values()
                         if block["served"]]
        assert served_blocks and all("engine" in block
                                     for block in served_blocks)

    def test_makespan_bounds_throughput(self):
        engine = fleet(replicas=2)
        engine.serve_trace(trace(40))
        snap = engine.stats()
        assert snap["modeled_makespan_s"] > 0
        assert snap["sustained_rps"] == pytest.approx(
            snap["served"] / snap["modeled_makespan_s"])

    def test_format_stats_renders(self):
        engine = fleet(replicas=2)
        engine.serve_trace(trace(30))
        text = engine.format_stats()
        assert "sustained throughput" in text
        assert "router affinity" in text
        assert "replica 0" in text


class TestSharedCacheTier:
    def test_second_fleet_hits_shared_tier(self):
        shared = SharedPlanCache()
        fleet(replicas=2, shared_cache=shared).serve_trace(trace(30))
        assert shared.misses > 0 and shared.hits == 0
        warm = fleet(replicas=2, shared_cache=shared)
        warm.serve_trace(trace(30))
        assert shared.hits > 0
        assert warm.stats()["shared_plan_cache"]["hits"] > 0

    def test_invalidate_plans_drops_both_tiers(self):
        engine = fleet(replicas=2)
        engine.serve_trace(trace(30))
        dropped = engine.invalidate_plans("preset-change")
        assert dropped > 0
        assert len(engine.shared_cache) == 0
        assert len(engine._planner.cache) == 0

    def test_version_token_partitions_fleets(self):
        from repro.gpu.arch import MAXWELL_GM204

        shared = SharedPlanCache()
        fleet(replicas=2, shared_cache=shared).serve_trace(trace(20))
        other = FleetEngine(FleetConfig(replicas=2, arch=MAXWELL_GM204),
                            shared_cache=shared)
        other.serve_trace(trace(20))
        # The Maxwell fleet shares the tier object but never hits the
        # Kepler fleet's entries.
        assert other.shared_cache is shared
        tokens = {token for token, _ in shared._entries}
        assert len(tokens) == 2


class TestTelemetry:
    def test_per_replica_virtual_tracks_in_export(self, tmp_path):
        tracer = Tracer()
        engine = fleet(replicas=4, tracer=tracer)
        engine.serve_trace(trace(60))
        path = tmp_path / "fleet.json"
        doc = engine.export_trace(str(path))
        assert path.exists()
        cats = {event.get("cat") for event in doc["traceEvents"]
                if event.get("ph") == "X"}
        replica_cats = {c for c in cats if c and c.startswith("replica")}
        assert any(c.endswith("/kernel") for c in replica_cats)
        assert any(c.endswith("/batch") for c in replica_cats)

    def test_spans_carry_replica_arg(self):
        tracer = Tracer()
        engine = fleet(replicas=2, tracer=tracer)
        result = engine.serve_trace(trace(30))
        replicas_seen = {span.args.get("replica") for span in tracer.spans
                         if span.category.startswith("replica")}
        assert replicas_seen == set(
            r for r in result.assignments if r is not None)

    def test_export_without_tracer_raises(self):
        with pytest.raises(ReproError, match="tracer"):
            fleet(replicas=2).export_trace("/tmp/never.json")

    def test_fleet_registry_aggregates_replica_counters(self):
        engine = fleet(replicas=2)
        engine.serve_trace(trace(40))
        served = engine.registry.get("serve_requests_total")
        assert served is not None and served.total() == 40
