"""Integration tests: fleet replays under injected faults.

The contract under test is the tentpole guarantee: with a chaos plan
installed, every admitted-and-not-abandoned request is answered exactly
once, bit-identically to a fault-free fleet, and two same-seed runs
produce identical outcomes.
"""

import numpy as np
import pytest

from repro.chaos import CHAOS_ENV, FaultInjector, FaultPlan
from repro.errors import ReproError
from repro.fleet import FleetConfig, FleetEngine
from repro.serve import synthetic_trace


def trace(n=80, seed=5, **kwargs):
    return synthetic_trace(n, seed=seed, **kwargs)


def fleet(replicas=4, chaos=None, **kwargs):
    kwargs.setdefault("queue_depth", 256)
    return FleetEngine(FleetConfig(replicas=replicas, **kwargs),
                       chaos=chaos)


def digests(result):
    return {r.req_id: (r.backend, r.output.tobytes())
            for r in result.responses if r is not None}


class TestBitIdenticalUnderFaults:
    @pytest.mark.parametrize("spec", [
        "crash:replica=1",
        "crash:replica=1,after=5",
        "wedge:replica=3",
        "slow:replica=0,factor=8",
        "obs-drop:replica=1",
        "build-fail:times=2",
    ])
    def test_single_fault_outputs_match_baseline(self, spec):
        reqs = trace(60)
        baseline = digests(fleet().serve_trace(trace(60)))
        chaotic = fleet(chaos="seed=1;" + spec).serve_trace(reqs)
        got = digests(chaotic)
        assert got, "chaotic fleet served nothing"
        for req_id, payload in got.items():
            assert payload == baseline[req_id]

    def test_nothing_lost_nothing_duplicated(self):
        engine = fleet(chaos="seed=1;crash:replica=1;wedge:replica=3")
        result = engine.serve_trace(trace(100))
        answered = [r.req_id for r in result.responses if r is not None]
        assert len(answered) == len(set(answered))
        shed_ids = {r.req_id for r in result.shed}
        assert len(answered) + len(shed_ids) == 100
        assert result.failovers >= 2

    def test_same_seed_runs_are_identical(self):
        def run():
            engine = fleet(
                chaos="seed=7;crash:replica=1,times=2;slow:factor=6")
            result = engine.serve_trace(trace(70, seed=9))
            return (digests(result), result.failovers,
                    [(r.req_id, r.reason) for r in result.shed])

        assert run() == run()


class TestFailover:
    def test_crash_counts_a_failover_and_recovers(self):
        engine = fleet(chaos="crash:replica=1")
        result = engine.serve_trace(trace(60))
        assert result.failovers == 1
        stats = engine.health.stats(engine.clock_s)
        assert stats["failovers_by_reason"] == {"crash": 1}
        assert stats["failures_by_reason"] == {"1/crash": 1}
        # The fault is spent: a second replay is fault-free.
        assert fleet().serve_trace(trace(60)).failovers == 0
        assert engine.serve_trace(trace(60, seed=8)).failovers == 0

    def test_exhausted_failover_abandons_to_failed_shed(self):
        # One replica, crash fires on every attempt: the shard runs out
        # of failover rounds and every admitted request is accounted as
        # a "failed" shed -- never silently lost.
        engine = fleet(replicas=1, chaos="crash:replica=0,times=99",
                       failover_retries=2)
        reqs = trace(24)
        result = engine.serve_trace(reqs)
        assert result.served == 0
        assert len(result.abandoned) > 0
        assert result.served + result.shed_count == len(reqs)
        assert all(r.reason == "failed" for r in result.abandoned)

    def test_breaker_open_reroutes_before_dispatch(self):
        engine = fleet(chaos="crash:replica=1,times=3",
                       breaker_threshold=1, failover_retries=1,
                       breaker_cooldown_s=1e9)
        engine.serve_trace(trace(40))           # trips replica 1's breaker
        result = engine.serve_trace(trace(40))  # shard re-homed pre-dispatch
        assert result.served == 40
        stats = engine.health.stats(engine.clock_s)
        assert stats["failovers_by_reason"].get("breaker-open", 0) >= 1
        assert stats["breakers"]["1"] == "open"

    def test_obs_drop_served_and_counted(self):
        engine = fleet(chaos="obs-drop:replica=1")
        result = engine.serve_trace(trace(60))
        assert result.served == 60
        assert engine.health.obs_dropped == 1

    def test_hedge_bounds_slow_replica_makespan(self):
        slow = fleet(chaos="seed=2;slow:replica=1,factor=50")
        hedged = fleet(chaos="seed=2;slow:replica=1,factor=50", hedge=True)
        slow_result = slow.serve_trace(trace(60))
        hedged_result = hedged.serve_trace(trace(60))
        assert hedged_result.hedges == 1
        assert hedged.clock_s < slow.clock_s
        assert digests(hedged_result) == digests(slow_result)


class TestClockAndConfig:
    def test_advance_clock_moves_epoch_and_rejects_negative(self):
        engine = fleet()
        assert engine.advance_clock(0.25) == pytest.approx(0.25)
        assert engine.clock_s == pytest.approx(0.25)
        with pytest.raises(ReproError, match="advance"):
            engine.advance_clock(-1.0)

    def test_chaos_accepts_plan_and_injector(self):
        plan = FaultPlan.parse("seed=3;crash")
        assert fleet(chaos=plan).chaos.plan == plan
        inj = FaultInjector(plan, 4)
        assert fleet(chaos=inj).chaos is inj
        with pytest.raises(ReproError, match="chaos"):
            fleet(chaos=123)

    def test_env_plan_picked_up(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "seed=4;crash:replica=1")
        engine = fleet()
        assert engine.chaos is not None
        assert engine.serve_trace(trace(60)).failovers == 1

    def test_chaosless_engine_has_no_injector(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert fleet().chaos is None

    def test_resilience_config_validated(self):
        for bad in (dict(failover_retries=-1), dict(retry_backoff_s=-1.0),
                    dict(breaker_threshold=0), dict(breaker_cooldown_s=0.0),
                    dict(plan_retries=-1), dict(hedge_factor=1.0),
                    dict(shed_record_cap=0)):
            with pytest.raises(ReproError):
                FleetConfig(**bad)

    def test_shed_record_cap_flows_to_admission(self):
        engine = fleet(replicas=1, queue_depth=1, shed_record_cap=3)
        engine.serve_trace(trace(40))
        assert len(engine.admission.shed_records) == 3
        assert engine.admission.shed == 40 - engine.admission.admitted


class TestStatsSurface:
    def test_stats_report_health_and_degradation(self):
        engine = fleet(chaos="crash:replica=1")
        engine.serve_trace(trace(60))
        snap = engine.stats()
        assert snap["degradation"] == "degraded"
        assert snap["health"]["failovers"] == 1
        healthy = fleet()
        healthy.serve_trace(trace(60))
        assert healthy.stats()["degradation"] == "healthy"
