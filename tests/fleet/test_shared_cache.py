"""Tests for the shared plan-cache tier and versioned invalidation."""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.fleet import SharedPlanCache, cache_version_token
from repro.gpu.arch import KEPLER_K40M, MAXWELL_GM204
from repro.obs.metrics import Registry


class TestVersionToken:
    def test_stable_for_same_inputs(self):
        assert (cache_version_token(KEPLER_K40M, ["fft", "naive"])
                == cache_version_token(KEPLER_K40M, ["fft", "naive"]))

    def test_backend_order_insensitive(self):
        assert (cache_version_token(KEPLER_K40M, ["naive", "fft"])
                == cache_version_token(KEPLER_K40M, ["fft", "naive"]))

    def test_arch_preset_changes_token(self):
        assert (cache_version_token(KEPLER_K40M)
                != cache_version_token(MAXWELL_GM204))

    def test_field_edit_changes_token(self):
        # An in-place re-tune of a preset invalidates as reliably as a
        # rename: the token digests every dataclass field.
        retuned = dataclasses.replace(KEPLER_K40M, smem_bank_width=4)
        assert (cache_version_token(KEPLER_K40M)
                != cache_version_token(retuned))

    def test_backend_portfolio_changes_token(self):
        assert (cache_version_token(KEPLER_K40M, ["fft"])
                != cache_version_token(KEPLER_K40M, ["fft", "winograd"]))


class TestSharedPlanCache:
    def test_get_or_build_builds_once(self):
        cache = SharedPlanCache()
        built = []

        def build():
            built.append(1)
            return "plan"

        assert cache.get_or_build("tok", ("k",), build) == "plan"
        assert cache.get_or_build("tok", ("k",), build) == "plan"
        assert len(built) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_version_token_partitions_entries(self):
        cache = SharedPlanCache()
        cache.publish("v1", ("k",), "old")
        assert cache.lookup("v1", ("k",)) == "old"
        assert cache.lookup("v2", ("k",)) is None

    def test_invalidate_drops_everything(self):
        registry = Registry()
        cache = SharedPlanCache(registry=registry)
        cache.publish("tok", ("a",), 1)
        cache.publish("tok", ("b",), 2)
        assert cache.invalidate("preset-change") == 2
        assert len(cache) == 0
        assert cache.lookup("tok", ("a",)) is None
        counter = registry.get("fleet_shared_cache_invalidations_total")
        assert counter.value(reason="preset-change") == 1

    def test_lru_eviction_at_capacity(self):
        cache = SharedPlanCache(capacity=2)
        cache.publish("tok", ("a",), 1)
        cache.publish("tok", ("b",), 2)
        cache.lookup("tok", ("a",))          # refresh a; b is now LRU
        cache.publish("tok", ("c",), 3)
        assert cache.lookup("tok", ("b",)) is None
        assert cache.lookup("tok", ("a",)) == 1
        assert cache.stats()["evictions"] == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ReproError):
            SharedPlanCache(capacity=0)

    def test_stats_keys(self):
        stats = SharedPlanCache().stats()
        assert set(stats) == {
            "capacity", "entries", "hits", "misses", "publishes",
            "evictions", "invalidations", "corruptions",
            "version_skews", "hit_rate",
        }

    def test_entries_gauge_tracks_population(self):
        registry = Registry()
        cache = SharedPlanCache(registry=registry)
        cache.publish("tok", ("a",), 1)
        assert registry.get("fleet_shared_cache_entries").value() == 1
        cache.invalidate()
        assert registry.get("fleet_shared_cache_entries").value() == 0
