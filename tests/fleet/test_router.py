"""Tests for shape-affinity routing and load-aware spilling."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.fleet import FleetRouter, shape_hash
from repro.obs.metrics import Registry


def problem(n=32, k=3, c=4, f=8):
    return ConvProblem.square(n, k, channels=c, filters=f)


class TestShapeHash:
    def test_deterministic(self):
        assert shape_hash(problem()) == shape_hash(problem())

    def test_process_stable_pinned_value(self):
        # BLAKE2-based, so this value must never change across runs,
        # processes, or Python versions (unlike builtin hash()).
        assert shape_hash(problem(32, 3, 4, 8)) == 0xC96B13596949E9C7

    def test_distinguishes_shapes(self):
        assert shape_hash(problem(32, 3)) != shape_hash(problem(32, 5))
        assert shape_hash(problem(32, 3, c=4)) != shape_hash(problem(32, 3, c=8))

    def test_salt_reshuffles(self):
        assert shape_hash(problem()) != shape_hash(problem(), salt="v2")


class TestAffinity:
    def test_in_range_and_stable(self):
        router = FleetRouter(4)
        homes = {router.affinity(problem(n)) for n in (16, 24, 32, 48, 64)}
        assert all(0 <= h < 4 for h in homes)
        assert router.affinity(problem(32)) == router.affinity(problem(32))

    def test_single_replica_routes_everything_home(self):
        router = FleetRouter(1)
        assert router.affinity(problem()) == 0

    def test_rejects_zero_replicas(self):
        with pytest.raises(ReproError):
            FleetRouter(0)


class TestRoute:
    def test_affinity_hit_when_home_has_room(self):
        router = FleetRouter(4)
        home = router.affinity(problem())
        assert router.route(problem(), [0, 0, 0, 0], 8) == home
        assert router.affinity_hits == 1
        assert router.spills == 0

    def test_standard_spills_to_least_loaded(self):
        router = FleetRouter(4)
        home = router.affinity(problem())
        depths = [5, 5, 5, 5]
        depths[home] = 8        # home full at bound 8
        least = (home + 1) % 4
        depths[least] = 1
        assert router.route(problem(), depths, 8) == least
        assert router.spills == 1

    def test_spill_tie_breaks_to_lowest_replica(self):
        router = FleetRouter(4)
        home = router.affinity(problem())
        depths = [2, 2, 2, 2]
        depths[home] = 8
        expected = min(r for r in range(4) if r != home)
        assert router.route(problem(), depths, 8) == expected

    def test_critical_bypasses_full_home(self):
        router = FleetRouter(4)
        home = router.affinity(problem())
        assert router.route(problem(), [99, 99, 99, 99], 8,
                            priority="critical") == home
        assert router.affinity_hits == 1

    def test_batch_never_spills(self):
        router = FleetRouter(4)
        home = router.affinity(problem())
        depths = [0, 0, 0, 0]
        depths[home] = 8
        assert router.route(problem(), depths, 8, priority="batch") is None

    def test_sheds_when_fleet_is_full(self):
        router = FleetRouter(2)
        assert router.route(problem(), [4, 4], 4) is None

    def test_depth_arity_checked(self):
        with pytest.raises(ReproError):
            FleetRouter(4).route(problem(), [0, 0], 8)


class TestStats:
    def test_hit_rate_and_counters(self):
        registry = Registry()
        router = FleetRouter(2, registry=registry)
        assert router.affinity_hit_rate == 1.0   # vacuous before routing
        home = router.affinity(problem())
        router.route(problem(), [0, 0], 1)                     # hit
        full = [0, 0]
        full[home] = 1
        router.route(problem(), full, 1)                       # spill
        stats = router.stats()
        assert stats["affinity_hits"] == 1
        assert stats["spills"] == 1
        assert stats["affinity_hit_rate"] == pytest.approx(0.5)
        assert registry.get(
            "fleet_router_affinity_hits_total").total() == 1
