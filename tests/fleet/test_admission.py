"""Tests for admission control: bounds, priorities, shedding."""

import pytest

from repro.conv.tensors import ConvProblem
from repro.errors import ReproError
from repro.fleet import AdmissionController, FleetRouter
from repro.obs.metrics import Registry
from repro.serve.request import ConvRequest


def make_request(req_id, arrival_s=0.0, priority="standard",
                 deadline_s=None, n=32):
    problem = ConvProblem.square(n, 3, channels=2, filters=4)
    image, filters = problem.random_instance(seed=req_id)
    return ConvRequest(req_id=req_id, problem=problem, image=image,
                       filters=filters, arrival_s=arrival_s,
                       priority=priority, deadline_s=deadline_s)


def controller(replicas=2, queue_depth=2, window_s=1e-3, registry=None,
               **kwargs):
    registry = registry if registry is not None else Registry()
    return AdmissionController(
        FleetRouter(replicas, registry=registry),
        queue_depth=queue_depth, window_s=window_s, registry=registry,
        **kwargs)


class TestAdmission:
    def test_admits_under_bound(self):
        ctl = controller()
        assert ctl.admit(make_request(0)) is not None
        assert ctl.admitted == 1
        assert ctl.shed == 0

    def test_home_replica_matches_router_affinity(self):
        ctl = controller()
        request = make_request(0)
        assert ctl.admit(request) == ctl.router.affinity(request.problem)

    def test_sheds_overload_when_fleet_full(self):
        # queue_depth=1 and simultaneous arrivals: one per replica fits,
        # the next standard request finds the whole fleet at the bound.
        ctl = controller(replicas=1, queue_depth=1)
        assert ctl.admit(make_request(0)) == 0
        assert ctl.admit(make_request(1)) is None
        assert ctl.shed == 1
        record = ctl.shed_records[0]
        assert record.reason == "overload"
        assert record.req_id == 1

    def test_batch_shed_before_standard_spills(self):
        # Same shape, home full: batch is shed, standard spills.
        ctl = controller(replicas=2, queue_depth=1)
        home = ctl.router.affinity(make_request(0).problem)
        assert ctl.admit(make_request(0)) == home
        assert ctl.admit(make_request(1, priority="batch")) is None
        spilled = ctl.admit(make_request(2, priority="standard"))
        assert spilled is not None and spilled != home

    def test_critical_admitted_past_the_bound(self):
        ctl = controller(replicas=1, queue_depth=1)
        assert ctl.admit(make_request(0)) == 0
        assert ctl.admit(make_request(1, priority="critical")) == 0

    def test_expired_deadline_shed_on_arrival(self):
        ctl = controller()
        request = make_request(0, arrival_s=2.0, deadline_s=1.0)
        assert ctl.admit(request) is None
        assert ctl.shed_records[0].reason == "expired"

    def test_future_deadline_admitted(self):
        ctl = controller()
        assert ctl.admit(
            make_request(0, arrival_s=0.0, deadline_s=1.0)) is not None

    def test_window_frees_capacity(self):
        ctl = controller(replicas=1, queue_depth=1, window_s=1e-3)
        assert ctl.admit(make_request(0, arrival_s=0.0)) == 0
        assert ctl.admit(make_request(1, arrival_s=0.5e-3)) is None
        # Past the window, the first arrival has flushed to the device.
        assert ctl.admit(make_request(2, arrival_s=2e-3)) == 0

    def test_unknown_priority_rejected(self):
        ctl = controller()
        request = make_request(0)
        request.priority = "bogus"
        with pytest.raises(ReproError, match="priority classes"):
            ctl.admit(request)


class TestValidation:
    def test_zero_queue_depth_rejected(self):
        with pytest.raises(ReproError):
            controller(queue_depth=0)

    def test_negative_window_rejected(self):
        with pytest.raises(ReproError):
            controller(window_s=-1.0)


class TestAccounting:
    def test_shed_rate_and_stats(self):
        registry = Registry()
        ctl = controller(replicas=1, queue_depth=1, registry=registry)
        ctl.admit(make_request(0))
        ctl.admit(make_request(1))                       # overload shed
        ctl.admit(make_request(2, arrival_s=5.0, deadline_s=1.0))  # expired
        assert ctl.shed_rate == pytest.approx(2 / 3)
        stats = ctl.stats()
        assert stats["admitted"] == 1
        assert stats["shed"] == 2
        assert stats["shed_by_reason"] == {
            "overload/standard": 1, "expired/standard": 1}
        shed_counter = registry.get("fleet_shed_total")
        assert shed_counter.value(reason="overload", priority="standard") == 1

    def test_depth_gauge_published(self):
        registry = Registry()
        ctl = controller(replicas=1, queue_depth=4, registry=registry)
        ctl.admit(make_request(0, arrival_s=0.0))
        ctl.admit(make_request(1, arrival_s=0.0))
        assert registry.get("fleet_queue_depth").value(replica="0") == 2


class TestEdgeCases:
    def test_arrival_exactly_at_window_boundary_frees_capacity(self):
        # The occupancy window is half-open, (t - window_s, t]: an
        # arrival exactly window_s after the previous one sees it as
        # already flushed.
        ctl = controller(replicas=1, queue_depth=1, window_s=1e-3)
        assert ctl.admit(make_request(0, arrival_s=0.0)) == 0
        assert ctl.admit(make_request(1, arrival_s=1e-3)) == 0
        assert ctl.shed == 0

    def test_arrival_just_inside_window_still_occupies(self):
        ctl = controller(replicas=1, queue_depth=1, window_s=1e-3)
        assert ctl.admit(make_request(0, arrival_s=0.0)) == 0
        assert ctl.admit(make_request(1, arrival_s=1e-3 - 1e-9)) is None
        assert ctl.shed_records[-1].reason == "overload"

    def test_zero_remaining_deadline_is_expired(self):
        # deadline == arrival: zero budget left, serving is pointless.
        ctl = controller()
        assert ctl.admit(
            make_request(0, arrival_s=1.0, deadline_s=1.0)) is None
        assert ctl.shed_records[-1].reason == "expired"

    def test_negative_remaining_deadline_is_expired(self):
        ctl = controller()
        assert ctl.admit(
            make_request(0, arrival_s=2.0, deadline_s=1.5)) is None
        assert ctl.shed_records[-1].reason == "expired"

    def test_expired_wins_over_overload(self):
        # A request that is both expired AND arriving into a full fleet
        # sheds as "expired": deadline checks precede routing, so the
        # record blames the cause the operator can actually fix.
        ctl = controller(replicas=1, queue_depth=1)
        assert ctl.admit(make_request(0, arrival_s=0.0)) == 0
        late = make_request(1, arrival_s=0.0, deadline_s=-1.0)
        assert ctl.admit(late) is None
        assert ctl.shed_records[-1].reason == "expired"
        assert ctl.stats()["shed_by_reason"] == {"expired/standard": 1}


class TestShedRecordRingBuffer:
    def test_detail_bounded_but_counters_exact(self):
        ctl = controller(replicas=1, queue_depth=1, shed_record_cap=5)
        ctl.admit(make_request(0))
        for req_id in range(1, 13):
            assert ctl.admit(make_request(req_id)) is None
        assert ctl.shed == 12                      # aggregate stays exact
        assert len(ctl.shed_records) == 5          # detail is bounded
        # The ring keeps the newest records.
        assert [r.req_id for r in ctl.shed_records] == [8, 9, 10, 11, 12]
        assert ctl.stats()["shed_record_cap"] == 5

    def test_default_cap_is_10k(self):
        from repro.fleet import DEFAULT_SHED_RECORD_CAP

        assert DEFAULT_SHED_RECORD_CAP == 10_000
        assert controller().shed_record_cap == 10_000

    def test_cap_validated(self):
        with pytest.raises(ReproError, match="shed record cap"):
            controller(shed_record_cap=0)

    def test_record_abandoned_uses_failed_reason(self):
        ctl = controller()
        request = make_request(0)
        assert ctl.admit(request) is not None
        ctl.record_abandoned(request)
        assert ctl.shed_records[-1].reason == "failed"
        assert ctl.stats()["shed_by_reason"] == {"failed/standard": 1}
