"""Smoke tests: every shipped example must run end to end.

Each example is executed in-process (``runpy``) so assertion failures
inside the scripts surface as test failures, and the printed output is
checked for its key conclusions.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys, argv=None):
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "GFlop/s" in out
        assert "bank-conflict free    : True" in out

    def test_bankwidth_microbench(self, capsys):
        out = run_example("bankwidth_microbench.py", capsys)
        assert "n = 2 (float2)" in out
        assert "MAGMA is" in out
        assert "8x" in out  # char gain on Kepler

    def test_edge_detection(self, capsys):
        out = run_example("edge_detection.py", capsys)
        assert "sobel" in out
        assert "matched filters" in out
        # Every stage verified against the reference.
        assert "err" in out

    def test_cnn_forward(self, capsys):
        out = run_example("cnn_forward.py", capsys)
        assert "stack speedup over cuDNN-like" in out
        assert "roofline" in out

    def test_cnn_training_step(self, capsys):
        out = run_example("cnn_training_step.py", capsys)
        assert "adjoint identities" in out
        assert "weight grad" in out

    def test_autotune_table1_quick(self, capsys):
        out = run_example("autotune_table1.py", capsys)
        assert "K=3" in out and "K=7" in out
        assert "paper Table 1" in out

    def test_serving_demo(self, capsys):
        out = run_example("serving_demo.py", capsys)
        assert "bit-exact vs conv2d_reference : 120/120 match" in out
        assert "plan cache" in out
        assert "batching speedup" in out

    def test_all_examples_present(self):
        names = {p.name for p in EXAMPLES.glob("*.py")}
        assert {"quickstart.py", "edge_detection.py", "cnn_forward.py",
                "cnn_training_step.py", "autotune_table1.py",
                "bankwidth_microbench.py", "serving_demo.py"} <= names
