"""Tests for the reference convolution against scipy and by hand."""

import numpy as np
import pytest
from scipy.signal import correlate2d

from repro.conv.reference import conv2d_reference, conv2d_single_channel
from repro.conv.tensors import Padding
from repro.errors import ShapeError


class TestAgainstScipy:
    @pytest.mark.parametrize("k", [1, 3, 5, 7])
    def test_single_channel_valid(self, rng, k):
        img = rng.standard_normal((20, 24)).astype(np.float32)
        flt = rng.standard_normal((k, k)).astype(np.float32)
        ours = conv2d_single_channel(img, flt)
        ref = correlate2d(img, flt, mode="valid")
        np.testing.assert_allclose(ours[0], ref, rtol=1e-4, atol=1e-4)

    def test_multi_channel_sums_channels(self, rng):
        img = rng.standard_normal((3, 16, 16)).astype(np.float32)
        flt = rng.standard_normal((2, 3, 3, 3)).astype(np.float32)
        out = conv2d_reference(img, flt)
        for f in range(2):
            ref = sum(
                correlate2d(img[c], flt[f, c], mode="valid") for c in range(3)
            )
            np.testing.assert_allclose(out[f], ref, rtol=1e-4, atol=1e-4)

    def test_same_padding(self, rng):
        img = rng.standard_normal((10, 10)).astype(np.float32)
        flt = rng.standard_normal((3, 3)).astype(np.float32)
        ours = conv2d_single_channel(img, flt, padding=Padding.SAME)
        ref = correlate2d(img, flt, mode="same")
        np.testing.assert_allclose(ours[0], ref, rtol=1e-4, atol=1e-4)


class TestAlgebra:
    def test_delta_filter_is_identity(self, rng):
        img = rng.standard_normal((12, 12)).astype(np.float32)
        delta = np.zeros((3, 3), dtype=np.float32)
        delta[0, 0] = 1.0
        out = conv2d_single_channel(img, delta)
        np.testing.assert_allclose(out[0], img[:10, :10])

    def test_linearity_in_filters(self, rng):
        img = rng.standard_normal((10, 10)).astype(np.float32)
        f1 = rng.standard_normal((3, 3)).astype(np.float32)
        f2 = rng.standard_normal((3, 3)).astype(np.float32)
        lhs = conv2d_single_channel(img, f1 + f2)
        rhs = conv2d_single_channel(img, f1) + conv2d_single_channel(img, f2)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-4, atol=1e-4)

    def test_ones_filter_is_box_sum(self):
        img = np.ones((6, 6), dtype=np.float32)
        out = conv2d_single_channel(img, np.ones((3, 3), dtype=np.float32))
        np.testing.assert_allclose(out[0], np.full((4, 4), 9.0))

    def test_k1_is_scaling(self, rng):
        img = rng.standard_normal((8, 8)).astype(np.float32)
        out = conv2d_single_channel(img, np.array([[2.0]], dtype=np.float32))
        np.testing.assert_allclose(out[0], 2.0 * img)


class TestShapes:
    def test_rectangular_image(self, rng):
        img = rng.standard_normal((2, 9, 17)).astype(np.float32)
        flt = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        assert conv2d_reference(img, flt).shape == (4, 7, 15)

    def test_channel_mismatch_rejected(self, rng):
        img = rng.standard_normal((2, 8, 8)).astype(np.float32)
        flt = rng.standard_normal((1, 3, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d_reference(img, flt)

    def test_nonsquare_filter_rejected(self, rng):
        img = rng.standard_normal((1, 8, 8)).astype(np.float32)
        flt = rng.standard_normal((1, 1, 3, 5)).astype(np.float32)
        with pytest.raises(ShapeError):
            conv2d_reference(img, flt)

    def test_single_channel_rejects_3d(self, rng):
        with pytest.raises(ShapeError):
            conv2d_single_channel(rng.standard_normal((2, 8, 8)), np.ones((3, 3)))
