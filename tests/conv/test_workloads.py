"""Tests for the workload sweeps."""

import pytest

from repro.conv.workloads import (
    GENERAL_FILTER_SIZES,
    SPECIAL_FILTER_SIZES,
    alexnet_layers,
    gemm_sweep_dims,
    general_case_sweep,
    special_case_sweep,
    vgg_layers,
)


class TestSpecialSweep:
    @pytest.mark.parametrize("k", SPECIAL_FILTER_SIZES)
    def test_all_points_single_channel(self, k):
        for pt in special_case_sweep(k):
            assert pt.problem.channels == 1
            assert pt.problem.kernel_size == k

    def test_includes_f1_low_overlap_regime(self):
        assert any(pt.problem.filters == 1 for pt in special_case_sweep(3))

    def test_labels_unique(self):
        labels = [pt.label for pt in special_case_sweep(3)]
        assert len(set(labels)) == len(labels)

    def test_unknown_filter_size_rejected(self):
        with pytest.raises(ValueError):
            special_case_sweep(7)


class TestGeneralSweep:
    @pytest.mark.parametrize("k", GENERAL_FILTER_SIZES)
    def test_points_valid(self, k):
        pts = general_case_sweep(k)
        assert len(pts) >= 8
        for pt in pts:
            assert pt.problem.channels >= 32
            assert pt.problem.kernel_size == k

    def test_includes_small_image_caveat_point(self):
        assert any(pt.problem.height == 32 for pt in general_case_sweep(3))

    def test_unknown_filter_size_rejected(self):
        with pytest.raises(ValueError):
            general_case_sweep(9)


class TestPresets:
    def test_gemm_dims_cover_2k_to_8k(self):
        dims = gemm_sweep_dims()
        assert min(dims) == 2048 and max(dims) == 8192

    def test_vgg_layers_shapes(self):
        layers = vgg_layers()
        assert len(layers) == 5
        assert layers[0].problem.height == 224
        assert all(pt.problem.kernel_size == 3 for pt in layers)

    def test_alexnet_layers(self):
        layers = alexnet_layers()
        assert any(pt.problem.kernel_size == 5 for pt in layers)
        assert all(pt.label.startswith("alexnet.") for pt in layers)
