"""Tests for ConvProblem and tensor helpers."""

import numpy as np
import pytest

from repro.conv.tensors import ConvProblem, Padding
from repro.errors import ShapeError


class TestDerivedQuantities:
    def test_valid_output_shrinks(self):
        p = ConvProblem.square(64, 5)
        assert (p.out_height, p.out_width) == (60, 60)

    def test_same_output_matches_input(self):
        p = ConvProblem.square(64, 5, padding=Padding.SAME)
        assert (p.out_height, p.out_width) == (64, 64)
        assert p.pad == 2

    def test_flops_formula(self):
        p = ConvProblem.square(32, 3, channels=4, filters=8)
        assert p.flops == 2 * 9 * 4 * 8 * 30 * 30

    def test_shapes(self):
        p = ConvProblem(height=10, width=12, channels=3, filters=5, kernel_size=3)
        assert p.image_shape == (3, 10, 12)
        assert p.filter_shape == (5, 3, 3, 3)
        assert p.output_shape == (5, 8, 10)

    def test_byte_sizes(self):
        p = ConvProblem.square(16, 3, channels=2, filters=4)
        assert p.image_bytes == 2 * 16 * 16 * 4
        assert p.filter_bytes == 4 * 2 * 9 * 4
        assert p.output_bytes == 4 * 14 * 14 * 4

    def test_max_pixel_reuse(self):
        p = ConvProblem.square(32, 5, filters=16)
        assert p.max_pixel_reuse == 25 * 16

    def test_as_valid_roundtrip(self):
        p = ConvProblem.square(32, 3, padding=Padding.SAME)
        v = p.as_valid()
        assert v.padding is Padding.VALID
        assert v.height == 34
        assert (v.out_height, v.out_width) == (32, 32)

    def test_as_valid_identity_for_valid(self):
        p = ConvProblem.square(32, 3)
        assert p.as_valid() is p


class TestValidation:
    def test_filter_larger_than_image_rejected(self):
        with pytest.raises(ShapeError):
            ConvProblem.square(4, 5)

    def test_same_padding_needs_odd_kernel(self):
        with pytest.raises(ShapeError):
            ConvProblem.square(16, 4, padding=Padding.SAME)

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ShapeError):
            ConvProblem(height=0, width=4, channels=1, filters=1, kernel_size=1)


class TestArrayChecks:
    def test_check_image_promotes_2d(self):
        p = ConvProblem.square(8, 3)
        arr = p.check_image(np.zeros((8, 8)))
        assert arr.shape == (1, 8, 8)
        assert arr.dtype == np.float32

    def test_check_image_wrong_shape(self):
        p = ConvProblem.square(8, 3)
        with pytest.raises(ShapeError):
            p.check_image(np.zeros((2, 8, 8)))

    def test_check_filters_promotes(self):
        p = ConvProblem.square(8, 3, filters=1)
        assert p.check_filters(np.zeros((3, 3))).shape == (1, 1, 3, 3)
        p4 = ConvProblem.square(8, 3, filters=4)
        assert p4.check_filters(np.zeros((4, 3, 3))).shape == (4, 1, 3, 3)

    def test_padded_image_zero_border(self):
        p = ConvProblem.square(4, 3, padding=Padding.SAME)
        img = p.padded_image(np.ones((4, 4)))
        assert img.shape == (1, 6, 6)
        assert img[0, 0, 0] == 0.0
        assert img[0, 1:5, 1:5].sum() == 16

    def test_random_instance_reproducible(self):
        p = ConvProblem.square(8, 3, channels=2, filters=3)
        a1, f1 = p.random_instance(seed=7)
        a2, f2 = p.random_instance(seed=7)
        np.testing.assert_array_equal(a1, a2)
        np.testing.assert_array_equal(f1, f2)
        assert a1.shape == p.image_shape and f1.shape == p.filter_shape
