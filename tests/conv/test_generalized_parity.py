"""Property-based parity of the generalized reference convolution.

``conv2d_reference`` is the repository's golden output for every layer
above it, so its generalization over stride / dilation / groups / NHWC
is held to a naive 7-loop scalar oracle (``conv2d_oracle``) across
randomized axis draws.  A second class pins the error-reporting
contract: every ShapeError names the full offending problem tuple,
generalized axes included.
"""

import numpy as np
import pytest

from repro.conv.reference import conv2d_oracle, conv2d_reference
from repro.conv.tensors import ConvProblem, Layout, Padding
from repro.errors import ShapeError


def _random_problem(rng):
    """One random generalized problem whose axes are mutually valid."""
    k = int(rng.choice((1, 3, 5)))
    stride = int(rng.integers(1, 4))
    dilation = int(rng.integers(1, 3))
    span = dilation * (k - 1) + 1
    height = span + int(rng.integers(0, 10))
    width = span + int(rng.integers(0, 10))
    # groups must divide channels and filters.
    groups = int(rng.choice((1, 1, 2, 3)))
    cpg = int(rng.integers(1, 4))
    fpg = int(rng.integers(1, 4))
    padding = Padding.SAME if rng.random() < 0.3 else Padding.VALID
    layout = Layout.NHWC if rng.random() < 0.5 else Layout.NCHW
    return ConvProblem(
        height=height, width=width, channels=groups * cpg,
        filters=groups * fpg, kernel_size=k, padding=padding,
        stride=stride, dilation=dilation, groups=groups, layout=layout,
    )


class TestReferenceVsOracle:
    @pytest.mark.parametrize("seed", range(40))
    def test_random_axis_draws_match_oracle(self, seed):
        rng = np.random.default_rng(1000 + seed)
        problem = _random_problem(rng)
        image, filters = problem.random_instance(seed=seed)
        got = conv2d_reference(image, filters, problem=problem)
        want = conv2d_oracle(problem, image, filters)
        assert got.shape == problem.output_shape
        np.testing.assert_allclose(
            got, want, rtol=1e-4, atol=1e-5,
            err_msg="reference diverges from 7-loop oracle on %s"
                    % problem.describe())

    def test_default_axes_match_legacy_inference_path(self):
        # problem=None (array inference) and problem=<default axes> are
        # the same computation — byte-identical outputs.
        problem = ConvProblem.square(16, 3, channels=3, filters=4)
        image, filters = problem.random_instance(seed=5)
        legacy = conv2d_reference(image, filters, problem.padding)
        general = conv2d_reference(image, filters, problem=problem)
        np.testing.assert_array_equal(legacy, general)

    def test_depthwise_equals_per_channel_single_group(self):
        problem = ConvProblem.square(12, 3, channels=4, filters=8, groups=4)
        image, filters = problem.random_instance(seed=9)
        out = conv2d_reference(image, filters, problem=problem)
        for g in range(4):
            single = conv2d_reference(
                image[g], filters[2 * g : 2 * g + 2, 0], problem.padding)
            np.testing.assert_allclose(out[2 * g : 2 * g + 2], single,
                                       rtol=1e-5, atol=1e-6)


class TestShapeErrorMessages:
    """Every shape/axis violation names the full problem tuple."""

    def _assert_full_tuple(self, excinfo, **expected):
        message = str(excinfo.value)
        assert "conv(" in message
        for axis, value in expected.items():
            assert "%s=%s" % (axis, value) in message, message

    def test_groups_not_dividing_channels(self):
        with pytest.raises(ShapeError) as excinfo:
            ConvProblem.square(16, 3, channels=4, filters=4, groups=3)
        self._assert_full_tuple(excinfo, groups=3, stride=1, dilation=1)

    def test_dilated_span_does_not_fit(self):
        with pytest.raises(ShapeError) as excinfo:
            ConvProblem.square(5, 5, channels=1, filters=1, dilation=3)
        self._assert_full_tuple(excinfo, dilation=3, stride=1, groups=1)

    def test_bad_image_names_layout_and_axes(self):
        problem = ConvProblem.square(16, 3, channels=2, filters=2,
                                     stride=2, layout=Layout.NHWC)
        with pytest.raises(ShapeError) as excinfo:
            problem.check_image(np.zeros((2, 16, 16), dtype=np.float32))
        self._assert_full_tuple(excinfo, stride=2, layout="nhwc")

    def test_bad_filters_names_groups(self):
        problem = ConvProblem.square(16, 3, channels=4, filters=4, groups=2)
        with pytest.raises(ShapeError) as excinfo:
            problem.check_filters(np.zeros((4, 4, 3, 3), dtype=np.float32))
        self._assert_full_tuple(excinfo, groups=2)
