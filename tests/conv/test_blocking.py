"""Tests for image partitioning with halos (paper Fig. 4)."""

import numpy as np
import pytest

from repro.conv.blocking import BlockGrid, BlockSpec, halo_read_overhead
from repro.conv.tensors import ConvProblem
from repro.errors import ConfigurationError


class TestGridGeometry:
    def test_exact_tiling(self):
        p = ConvProblem.square(34, 3)  # output 32x32
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        assert (grid.blocks_y, grid.blocks_x) == (4, 2)
        assert grid.total_blocks == 8

    def test_ceil_tiling_with_partial_blocks(self):
        p = ConvProblem.square(35, 3)  # output 33x33
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        assert (grid.blocks_y, grid.blocks_x) == (5, 3)
        views = list(grid)
        assert sum(v.is_partial for v in views) > 0
        # Union of clipped tiles covers the output exactly once.
        cover = np.zeros((33, 33), dtype=int)
        for v in views:
            cover[v.out_y0 : v.out_y0 + v.out_rows,
                  v.out_x0 : v.out_x0 + v.out_cols] += 1
        assert (cover == 1).all()

    def test_view_footprint_includes_halo(self):
        p = ConvProblem.square(34, 3)
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        v = grid.view(0, 0)
        assert (v.in_rows, v.in_cols) == (10, 18)

    def test_out_of_range_view_rejected(self):
        p = ConvProblem.square(34, 3)
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        with pytest.raises(ConfigurationError):
            grid.view(4, 0)


class TestExtract:
    def test_interior_block_is_plain_slice(self):
        p = ConvProblem.square(34, 3)
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        plane = np.arange(34 * 34, dtype=np.float32).reshape(34, 34)
        v = grid.view(0, 0)
        np.testing.assert_array_equal(v.extract(plane), plane[:10, :18])

    def test_edge_block_zero_filled(self):
        p = ConvProblem.square(35, 3)
        grid = BlockGrid(p, BlockSpec(block_h=8, block_w=16))
        plane = np.ones((35, 35), dtype=np.float32)
        v = grid.view(4, 2)
        tile = v.extract(plane)
        assert tile.shape == (10, 18)
        assert tile[-1, -1] == 0.0  # beyond the image edge
        assert tile[0, 0] == 1.0


class TestHaloOverhead:
    def test_overhead_formula(self):
        p = ConvProblem.square(34, 3)
        spec = BlockSpec(block_h=8, block_w=16)
        # (10*18)/(8*16) per block, 8 blocks, over 34^2 unique pixels.
        assert halo_read_overhead(p, spec) == pytest.approx(10 * 18 * 8 / 34 ** 2)

    def test_larger_blocks_lower_overhead(self):
        p = ConvProblem.square(514, 3)
        small = halo_read_overhead(p, BlockSpec(block_h=4, block_w=64))
        large = halo_read_overhead(p, BlockSpec(block_h=8, block_w=256))
        assert large < small

    def test_paper_config_overhead_is_small(self):
        # The paper's W=256, H=8 on a 2048^2 image: ~26% (vertical halo
        # dominates: (8+2)/8).
        p = ConvProblem.square(2048, 3)
        overhead = halo_read_overhead(p, BlockSpec(block_h=8, block_w=256))
        assert 1.0 < overhead < 1.35

    def test_k1_has_no_halo(self):
        p = ConvProblem.square(256, 1)
        assert halo_read_overhead(p, BlockSpec(block_h=8, block_w=256)) == \
            pytest.approx(1.0)

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            BlockSpec(block_h=0, block_w=16)
