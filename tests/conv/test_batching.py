"""Tests for minibatch execution."""

import numpy as np
import pytest

from repro.baselines.fft_conv import FFTConvolution
from repro.conv.batching import BatchedKernel
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.core.config import GeneralCaseConfig
from repro.core.general import GeneralCaseKernel
from repro.errors import ConfigurationError, ShapeError

SMALL = GeneralCaseConfig(w=16, h=8, ftb=16, wt=8, ft=4, csh=2)


class TestFunctional:
    def test_batched_results_match_per_image(self, rng):
        imgs = rng.standard_normal((3, 2, 14, 14)).astype(np.float32)
        flt = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        batched = BatchedKernel(GeneralCaseKernel(config=SMALL), 3)
        out = batched.run(imgs, flt)
        assert out.shape == (3, 4, 12, 12)
        for b in range(3):
            np.testing.assert_allclose(out[b], conv2d_reference(imgs[b], flt),
                                       rtol=1e-3, atol=1e-3)

    def test_single_channel_promotion(self, rng):
        imgs = rng.standard_normal((2, 14, 14)).astype(np.float32)
        flt = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        out = BatchedKernel(GeneralCaseKernel(config=SMALL), 2).run(imgs, flt)
        assert out.shape == (2, 1, 12, 12)

    def test_wrong_batch_rejected(self, rng):
        imgs = rng.standard_normal((2, 1, 14, 14)).astype(np.float32)
        flt = rng.standard_normal((1, 1, 3, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            BatchedKernel(GeneralCaseKernel(config=SMALL), 3).run(imgs, flt)

    def test_nonpositive_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedKernel(GeneralCaseKernel(), 0)


class TestCost:
    def test_ledger_scales_linearly(self):
        p = ConvProblem.square(64, 3, channels=16, filters=64)
        one = BatchedKernel(GeneralCaseKernel(), 1).cost(p)
        eight = BatchedKernel(GeneralCaseKernel(), 8).cost(p)
        assert eight.flops == pytest.approx(8 * one.flops)
        assert eight.launch.total_blocks == 8 * one.launch.total_blocks

    def test_batching_improves_small_image_throughput(self):
        """Small-image launches underfill the machine; the batch fills it."""
        p = ConvProblem.square(32, 3, channels=64, filters=64)
        single = BatchedKernel(GeneralCaseKernel(), 1).gflops(p)
        batched = BatchedKernel(GeneralCaseKernel(), 32).gflops(p)
        assert batched > single

    def test_direct_kernel_batch_insensitive_when_large(self):
        p = ConvProblem.square(224, 3, channels=64, filters=128)
        single = BatchedKernel(GeneralCaseKernel(), 1).gflops(p)
        batched = BatchedKernel(GeneralCaseKernel(), 16).gflops(p)
        assert batched == pytest.approx(single, rel=0.1)

    def test_fft_amortizes_filter_transforms(self):
        p = ConvProblem.square(64, 5, channels=128, filters=128)
        fft = FFTConvolution()
        per_image_1 = fft.batched_cost(p, 1).flops
        per_image_32 = fft.batched_cost(p, 32).flops / 32
        assert per_image_32 < 0.5 * per_image_1

    def test_time_per_image_decreases_for_fft(self):
        p = ConvProblem.square(64, 5, channels=128, filters=128)
        t1 = BatchedKernel(FFTConvolution(), 1).time_per_image_ms(p)
        t32 = BatchedKernel(FFTConvolution(), 32).time_per_image_ms(p)
        assert t32 < t1
