"""Tests for convolution gradients (training-side operators)."""

import numpy as np
import pytest

from repro.conv.gradients import (
    conv2d_input_gradient,
    conv2d_weight_gradient,
    input_gradient_problem,
    weight_gradient_problem,
)
from repro.conv.reference import conv2d_reference
from repro.conv.tensors import ConvProblem
from repro.errors import ConfigurationError, ShapeError


def random_layer(rng, c=3, f=4, n=12, k=3):
    img = rng.standard_normal((c, n, n)).astype(np.float32)
    flt = rng.standard_normal((f, c, k, k)).astype(np.float32)
    g = rng.standard_normal((f, n - k + 1, n - k + 1)).astype(np.float32)
    return img, flt, g


class TestAdjointIdentities:
    """<g, conv(x, W)> = <dgrad(g, W), x> = <wgrad(x, g), W>."""

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_input_gradient_is_adjoint(self, rng, k):
        img, flt, g = random_layer(rng, k=k)
        lhs = float(np.sum(g * conv2d_reference(img, flt)))
        dx = conv2d_input_gradient(g, flt)
        rhs = float(np.sum(dx * img))
        assert lhs == pytest.approx(rhs, rel=1e-3)

    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_weight_gradient_is_adjoint(self, rng, k):
        img, flt, g = random_layer(rng, k=k)
        lhs = float(np.sum(g * conv2d_reference(img, flt)))
        dw = conv2d_weight_gradient(img, g, k)
        rhs = float(np.sum(dw * flt))
        assert lhs == pytest.approx(rhs, rel=1e-3)

    def test_finite_difference_spot_check(self, rng):
        img, flt, g = random_layer(rng, c=2, f=2, n=8, k=3)
        dw = conv2d_weight_gradient(img, g, 3)
        eps = 1e-2
        bumped = flt.copy()
        bumped[1, 0, 2, 1] += eps
        loss = lambda w: float(np.sum(g * conv2d_reference(img, w)))
        numeric = (loss(bumped) - loss(flt)) / eps
        assert numeric == pytest.approx(dw[1, 0, 2, 1], rel=1e-2)


class TestShapes:
    def test_input_gradient_shape(self, rng):
        img, flt, g = random_layer(rng, c=3, f=5, n=14, k=5)
        assert conv2d_input_gradient(g, flt).shape == img.shape

    def test_weight_gradient_shape(self, rng):
        img, flt, g = random_layer(rng, c=3, f=5, n=14, k=5)
        assert conv2d_weight_gradient(img, g, 5).shape == flt.shape

    def test_mismatched_grad_rejected(self, rng):
        img, flt, g = random_layer(rng)
        with pytest.raises(ShapeError):
            conv2d_weight_gradient(img, g[:, :-1], 3)

    def test_filter_count_mismatch_rejected(self, rng):
        img, flt, g = random_layer(rng)
        with pytest.raises(ShapeError):
            conv2d_input_gradient(g[:-1], flt)


class TestKernelMappings:
    def test_dgrad_problem_swaps_channels_and_filters(self):
        p = ConvProblem.square(64, 3, channels=16, filters=32)
        q = input_gradient_problem(p)
        assert (q.channels, q.filters) == (32, 16)
        assert (q.out_height, q.out_width) == (p.height, p.width)

    def test_dgrad_runs_on_general_kernel(self, rng):
        """The mapped problem produces exactly conv2d_input_gradient."""
        from repro.core.config import GeneralCaseConfig
        from repro.core.general import GeneralCaseKernel

        img, flt, g = random_layer(rng, c=3, f=4, n=20, k=3)
        pad = 2
        g_padded = np.pad(g, ((0, 0), (pad, pad), (pad, pad)))
        w_rot = np.ascontiguousarray(flt[:, :, ::-1, ::-1].transpose(1, 0, 2, 3))
        kern = GeneralCaseKernel(
            config=GeneralCaseConfig(w=16, h=8, ftb=16, wt=8, ft=4, csh=2))
        via_kernel = kern.run(g_padded, w_rot)
        np.testing.assert_allclose(
            via_kernel, conv2d_input_gradient(g, flt), rtol=1e-3, atol=1e-3)

    def test_dgrad_costable(self):
        from repro.core.general import GeneralCaseKernel

        p = ConvProblem.square(64, 3, channels=16, filters=32)
        q = input_gradient_problem(p)
        assert GeneralCaseKernel().gflops(q) > 0

    def test_wgrad_problem_for_late_layer(self):
        p = ConvProblem.square(16, 3, channels=256, filters=64)  # OH=14
        q = weight_gradient_problem(p)
        assert q.channels == 1
        assert q.kernel_size == 14
        assert q.filters == 64
        # Output of the mapped problem is exactly the K x K taps.
        assert (q.out_height, q.out_width) == (3, 3)

    def test_wgrad_costable_on_special_kernel(self):
        from repro.core.config import SpecialCaseConfig
        from repro.core.special import SpecialCaseKernel

        p = ConvProblem.square(16, 3, channels=256, filters=8)
        q = weight_gradient_problem(p)
        kern = SpecialCaseKernel(config=SpecialCaseConfig(block_w=64, block_h=2))
        # One launch per input channel.
        per_channel = kern.predict(q).total
        assert per_channel > 0

    def test_wgrad_rejects_large_gradient_maps(self):
        p = ConvProblem.square(224, 3, channels=3, filters=64)  # OH=222
        with pytest.raises(ConfigurationError):
            weight_gradient_problem(p)

    def test_wgrad_rejects_rectangular(self):
        p = ConvProblem(height=16, width=18, channels=4, filters=4, kernel_size=3)
        with pytest.raises(ConfigurationError):
            weight_gradient_problem(p)
