"""Benchmarks of the simulation substrate itself: how fast the
functional executors and the tracing/timing pipeline run on the host.
These are the numbers a user of the library cares about when scaling
experiments (wall-clock per simulated kernel launch)."""

import numpy as np
import pytest

from repro.baselines.implicit_gemm import ImplicitGemmKernel
from repro.conv.tensors import ConvProblem
from repro.core.general import GeneralCaseKernel
from repro.core.special import SpecialCaseKernel


@pytest.fixture(scope="module")
def special_instance():
    rng = np.random.default_rng(0)
    img = rng.standard_normal((256, 512)).astype(np.float32)
    flt = rng.standard_normal((4, 3, 3)).astype(np.float32)
    return img, flt


@pytest.fixture(scope="module")
def general_instance():
    rng = np.random.default_rng(1)
    img = rng.standard_normal((8, 36, 36)).astype(np.float32)
    flt = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
    return img, flt


def test_special_functional_execution(benchmark, special_instance):
    img, flt = special_instance
    kern = SpecialCaseKernel()
    out = benchmark(kern.run, img, flt)
    assert out.shape == (4, 254, 510)


def test_general_functional_execution(benchmark, general_instance):
    img, flt = general_instance
    kern = GeneralCaseKernel()
    out = benchmark(kern.run, img, flt)
    assert out.shape == (16, 34, 34)


def test_special_cost_tracing(benchmark):
    kern = SpecialCaseKernel()
    p = ConvProblem.square(2048, 3, channels=1, filters=32)
    cost = benchmark(kern.cost, p)
    assert cost.flops >= p.flops


def test_general_cost_tracing(benchmark):
    kern = GeneralCaseKernel()
    p = ConvProblem.square(224, 3, channels=64, filters=128)
    cost = benchmark(kern.cost, p)
    assert cost.flops >= p.flops


def test_implicit_gemm_cost_with_tile_selection(benchmark):
    kern = ImplicitGemmKernel()
    p = ConvProblem.square(128, 3, channels=64, filters=128)
    cost = benchmark(kern.cost, p)
    assert cost.flops >= p.flops


def test_end_to_end_prediction(benchmark):
    kern = GeneralCaseKernel()
    p = ConvProblem.square(128, 5, channels=64, filters=128)
    gflops = benchmark(kern.gflops, p)
    assert gflops > 0
