"""Benchmark: regenerate paper Fig. 1 (shared-memory access patterns).

Paper claim: matching the per-thread data width to the 8-byte Kepler
bank width doubles the effective shared-memory bandwidth.
"""

import pytest

from repro.bench.figures import fig1_bank_patterns
from repro.core.bankwidth import smem_bandwidth_gain
from repro.gpu.arch import FERMI_M2090, KEPLER_K40M


def test_fig1_bank_patterns(benchmark, save_experiment):
    exp = benchmark(fig1_bank_patterns)
    save_experiment(exp)

    paper_row = next(r for r in exp.rows if "paper" in r.label)
    assert paper_row.values["conventional"] == 2.0
    assert paper_row.values["matched"] == 1.0


def test_fig1_bandwidth_gain_is_two_on_kepler(benchmark):
    gain = benchmark(smem_bandwidth_gain, KEPLER_K40M, 4)
    assert gain == pytest.approx(2.0)


def test_fig1_no_gain_on_fermi(benchmark):
    gain = benchmark(smem_bandwidth_gain, FERMI_M2090, 4)
    assert gain == pytest.approx(1.0)
