"""Benchmark: regenerate paper Table 1 by design-space exploration.

Paper claim: the tabulated (W, H, F_TB, W_T, F_T, C_SH) configurations
are the best found by exploration for each filter size.  Our model's
explored best need not coincide exactly (the hardware and the model
weigh resources differently), but the paper's configurations must be
competitive — and every explored configuration must be resident-valid.
"""

from repro.bench.figures import table1
from repro.core.config import TABLE1_CONFIGS
from repro.core.dse import enumerate_general_configs, explore_general


def test_table1_reproduction(benchmark, save_experiment):
    exp = benchmark.pedantic(table1, rounds=1, iterations=1)
    save_experiment(exp)

    for row in exp.rows:
        paper = row.values["paper config"]
        best = row.values["explored best"]
        assert best >= paper                # exploration cannot do worse
        assert paper >= 0.75 * best         # and the paper's pick is competitive


def test_exploration_space_is_nontrivial(benchmark):
    configs = benchmark(enumerate_general_configs, 3, 2)
    assert len(configs) > 500
    assert TABLE1_CONFIGS[3] in configs


def test_exploration_ranking_quality(benchmark):
    """The explored top-10 for K=5 must beat the bottom of the space."""

    def explore():
        configs = enumerate_general_configs(5, 2)[::7]  # subsample for speed
        return explore_general(5, configs=configs)

    ranked = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert ranked[0].gflops > 1.5 * ranked[-1].gflops
