"""Fleet proof-point harness: emits ``BENCH_serve.json``.

Not a pytest module — run it directly::

    PYTHONPATH=src python benchmarks/fleet_proof.py                 # full
    PYTHONPATH=src python benchmarks/fleet_proof.py --requests 5000 # quick

Three legs, one JSON document:

* ``table1`` — wall-clock of the paper's table-1 DSE sweep, the repo's
  long-standing host-side cost yardstick (tracked so serving work never
  quietly regresses the core reproduction);
* ``proof`` — the fleet acceptance proof point: a synthetic trace is
  served by one serial engine and by an N-replica fleet, and every
  fleet response must be **bit-identical** to its serial twin (backend
  and output bytes); reports modeled throughput and p50/p95/p99 for
  both sides, plus the router/shared-cache/shed counters from the obs
  registry;
* ``overload`` — the same fleet under an arrival rate far above
  capacity, demonstrating bounded p99 via admission control: excess
  load is shed (non-zero shed rate) instead of stretching the tail.

The modeled (virtual-clock) numbers are deterministic; only the
``*_wall_s`` fields vary between machines.
"""

import argparse
import hashlib
import json
import sys
import time

import numpy as np

from repro import __version__
from repro.fleet import FleetConfig, FleetEngine
from repro.serve import ServeEngine, synthetic_trace


def leg_meta():
    """Provenance stamp for one leg: schema, version, git sha, python.

    ``repro perf report`` ingests these numbers as a trajectory point
    (:func:`repro.obs.perf.trajectory.normalize_bench_serve`); the stamp
    is what lets that ingestion carry real provenance instead of a
    backfilled guess.
    """
    import platform

    from repro.obs.perf.trajectory import SCHEMA_VERSION, _git_sha

    return {
        "schema_version": SCHEMA_VERSION,
        "version": __version__,
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "recorded_unix": round(time.time(), 3),
    }


def response_digest(responses):
    """One order-sensitive digest over (req_id, backend, output bytes)."""
    h = hashlib.blake2b(digest_size=16)
    for response in responses:
        if response is None:
            h.update(b"shed")
            continue
        h.update(str(response.req_id).encode())
        h.update(response.backend.encode())
        h.update(np.ascontiguousarray(response.output).tobytes())
    return h.hexdigest()


def latency_percentiles(responses):
    lat = [r.latency_s for r in responses if r is not None]
    if not lat:
        return {"p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0}
    return {
        "p50_s": float(np.percentile(lat, 50)),
        "p95_s": float(np.percentile(lat, 95)),
        "p99_s": float(np.percentile(lat, 99)),
    }


def leg_table1(jobs=None):
    from repro.core.dse import reproduce_table1

    start = time.perf_counter()
    rows = reproduce_table1(jobs=jobs)
    wall_s = time.perf_counter() - start
    return {"wall_s": round(wall_s, 3), "rows": len(rows)}


def leg_proof(n_requests, replicas, rate_hz, seed, jobs=None):
    # Serial reference: one engine, the whole trace, request order.
    trace = synthetic_trace(n_requests, seed=seed, rate_hz=rate_hz)
    start = time.perf_counter()
    single = ServeEngine()
    serial_responses = single.serve_trace(trace)
    single_wall_s = time.perf_counter() - start
    serial_digest = response_digest(serial_responses)
    serial_pct = latency_percentiles(serial_responses)
    single_stats = single.stats()

    # Fleet: same trace, N replicas, affinity routing.
    trace = synthetic_trace(n_requests, seed=seed, rate_hz=rate_hz)
    start = time.perf_counter()
    fleet = FleetEngine(FleetConfig(replicas=replicas, jobs=jobs))
    result = fleet.serve_trace(trace)
    fleet_wall_s = time.perf_counter() - start
    fleet_digest = response_digest(result.responses)
    fleet_pct = latency_percentiles(result.responses)
    snap = fleet.stats()

    mismatches = 0
    for got, want in zip(result.responses, serial_responses):
        if (got is None or got.backend != want.backend
                or not np.array_equal(got.output, want.output)):
            mismatches += 1
    return {
        "requests": n_requests,
        "replicas": replicas,
        "rate_hz": rate_hz,
        "bit_identical": mismatches == 0 and serial_digest == fleet_digest,
        "mismatches": mismatches,
        "response_digest": serial_digest,
        "shed": result.shed_count,
        "single": {
            "wall_s": round(single_wall_s, 3),
            "modeled_rps": single_stats["throughput_rps"],
            "latency": serial_pct,
        },
        "fleet": {
            "wall_s": round(fleet_wall_s, 3),
            "modeled_rps": snap["sustained_rps"],
            "latency": fleet_pct,
            "affinity_hit_rate": snap["router"]["affinity_hit_rate"],
            "shared_cache": snap["shared_plan_cache"],
            "deadline_misses": snap["deadline_misses"],
        },
    }


def leg_overload(n_requests, replicas, rate_hz, seed, jobs=None):
    trace = synthetic_trace(n_requests, seed=seed, rate_hz=rate_hz,
                            deadline_budget_s=5e-3,
                            priority_mix={"critical": 0.05, "standard": 0.75,
                                          "batch": 0.2})
    fleet = FleetEngine(FleetConfig(replicas=replicas, jobs=jobs))
    result = fleet.serve_trace(trace)
    snap = fleet.stats()
    return {
        "requests": n_requests,
        "replicas": replicas,
        "rate_hz": rate_hz,
        "served": result.served,
        "shed": result.shed_count,
        "shed_rate": snap["admission"]["shed_rate"],
        "shed_by_reason": snap["admission"]["shed_by_reason"],
        "latency_p99_s": snap["latency_p99_s"],
        "deadline_misses": snap["deadline_misses"],
        "deadline_miss_rate": snap["deadline_miss_rate"],
        "affinity_hit_rate": snap["router"]["affinity_hit_rate"],
        "sustained_rps": snap["sustained_rps"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fleet serving proof point; writes BENCH_serve.json")
    parser.add_argument("--requests", type=int, default=100_000,
                        help="trace length for the proof leg")
    parser.add_argument("--overload-requests", type=int, default=10_000)
    parser.add_argument("--replicas", type=int, default=4)
    parser.add_argument("--rate", type=float, default=50_000.0,
                        help="proof-leg arrival rate (below capacity: "
                        "nothing is shed, so bit-identity must hold)")
    parser.add_argument("--overload-rate", type=float, default=500_000.0)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--jobs", type=int, default=None,
                        help="fleet fan-out degree (default: REPRO_JOBS)")
    parser.add_argument("--skip-table1", action="store_true")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    doc = {
        "version": __version__,
        "legs": {},
    }
    if not args.skip_table1:
        print("leg 1/3: table1 DSE wall-clock ...", flush=True)
        doc["legs"]["table1"] = leg_table1(jobs=args.jobs)
    print("leg 2/3: %d-request proof point, %d replicas ..."
          % (args.requests, args.replicas), flush=True)
    doc["legs"]["proof"] = leg_proof(
        args.requests, args.replicas, args.rate, args.seed, jobs=args.jobs)
    print("leg 3/3: overload at %g req/s ..." % args.overload_rate,
          flush=True)
    doc["legs"]["overload"] = leg_overload(
        args.overload_requests, args.replicas, args.overload_rate,
        args.seed, jobs=args.jobs)
    for leg in doc["legs"].values():
        leg["meta"] = leg_meta()

    with open(args.output, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    proof = doc["legs"]["proof"]
    print("bit_identical=%s mismatches=%d shed=%d -> %s"
          % (proof["bit_identical"], proof["mismatches"], proof["shed"],
             args.output))
    return 0 if proof["bit_identical"] and not proof["shed"] else 1


if __name__ == "__main__":
    sys.exit(main())
