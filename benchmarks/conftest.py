"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables/figures through the
library and (a) measures how long the regeneration takes with
pytest-benchmark, (b) asserts the paper's qualitative shape, and
(c) writes the rendered table to ``benchmarks/output/`` so the numbers
land in EXPERIMENTS.md without manual copying.
"""

import pathlib

import pytest

from repro.bench.report import format_experiment

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_experiment(output_dir):
    """Write an experiment's table (txt + csv + json) next to the
    benchmark results, for humans and for downstream analysis."""

    def _save(exp, precision=1):
        text = format_experiment(exp, precision=precision)
        (output_dir / ("%s.txt" % exp.exp_id)).write_text(text + "\n")
        (output_dir / ("%s.csv" % exp.exp_id)).write_text(exp.to_csv())
        (output_dir / ("%s.json" % exp.exp_id)).write_text(exp.to_json() + "\n")
        return text

    return _save
