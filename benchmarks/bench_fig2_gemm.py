"""Benchmark: regenerate paper Fig. 2 (SGEMM: cuBLAS vs MAGMA vs the
bank-width-matched MAGMA modification, square dims 2K-8K on Kepler).

Paper claims: MAGMA (tuned for Fermi) is 2.4x slower than cuBLAS on
Kepler; matching W_CD to the 8-byte banks saves 36% of MAGMA's time.
"""

import numpy as np

from repro.bench.figures import fig2_gemm
from repro.bench.report import summarize_ratio
from repro.gpu.arch import FERMI_M2090


def test_fig2_kepler(benchmark, save_experiment):
    exp = benchmark(fig2_gemm)
    save_experiment(exp)

    # Ordering holds at every dimension.
    for row in exp.rows:
        assert row.values["cuBLAS"] < row.values["MAGMA mod."] < row.values["MAGMA"]

    # MAGMA's slowdown is in the paper's regime (2.4x reported).
    slowdown = summarize_ratio(exp, "MAGMA", "cuBLAS")
    assert 1.6 < slowdown["mean"] < 3.2

    # The modification saves a large fraction of MAGMA's time (36%).
    savings = [1 - r.values["MAGMA mod."] / r.values["MAGMA"] for r in exp.rows]
    assert 0.25 < np.mean(savings) < 0.55


def test_fig2_fermi_control(benchmark, save_experiment):
    """On Fermi the MAGMA kernel is competitive — the slowdown is a
    Kepler bank-width artifact, not a bad kernel."""
    exp = benchmark(fig2_gemm, FERMI_M2090)
    exp.exp_id = "fig2-fermi"
    save_experiment(exp)
    ratio = summarize_ratio(exp, "MAGMA", "cuBLAS")
    assert ratio["mean"] < 1.25
