"""Serving-engine benchmarks: throughput versus batching deadline, and
the host-side cost of planning and serving.

The deadline sweep is the subsystem's core trade-off: a longer deadline
lets the batcher coalesce more same-shape requests per launch, which
amortizes launch overhead (higher requests per modeled second) at the
price of queueing latency.  The sweep is written to
``benchmarks/output/serve-deadline.{txt,csv,json}`` alongside the paper
tables.
"""

import pytest

from repro.bench.runner import Experiment
from repro.serve import ServeEngine, synthetic_trace

N_REQUESTS = 150
DEADLINES = (0.0, 2e-4, 1e-3, 5e-3)


def _serve(deadline_s, max_batch=32):
    engine = ServeEngine(deadline_s=deadline_s, max_batch=max_batch)
    engine.serve_trace(synthetic_trace(N_REQUESTS, seed=11))
    return engine.stats()


@pytest.fixture(scope="module")
def deadline_sweep():
    return {d: _serve(d) for d in DEADLINES}


def test_throughput_vs_deadline(deadline_sweep, save_experiment):
    exp = Experiment(
        exp_id="serve-deadline",
        title="Serving throughput vs batching deadline (150-request trace)",
        unit="req/modeled-s",
        columns=["throughput", "mean batch", "mean latency us"],
        paper_expectation="longer deadlines batch more and serve faster, "
        "at higher latency",
    )
    for deadline, snap in deadline_sweep.items():
        exp.add("deadline=%gs" % deadline, {
            "throughput": snap["throughput_rps"],
            "mean batch": snap["mean_batch_size"],
            "mean latency us": snap["mean_latency_s"] * 1e6,
        })
    save_experiment(exp, precision=1)

    # Monotone qualitative shape: more deadline -> no smaller batches,
    # and the longest deadline strictly beats the unbatched extreme.
    batches = [deadline_sweep[d]["mean_batch_size"] for d in DEADLINES]
    assert batches == sorted(batches)
    assert (deadline_sweep[DEADLINES[-1]]["throughput_rps"]
            > deadline_sweep[0.0]["throughput_rps"])


def test_serve_trace_wall_clock(benchmark):
    """Host-side serving rate (plan cache warm after the first round)."""
    trace = synthetic_trace(60, seed=3)
    engine = ServeEngine(deadline_s=1e-3, max_batch=16)
    benchmark(engine.serve_trace, trace)


def test_plan_cache_hit_wall_clock(benchmark):
    """A warm plan lookup must be orders of magnitude under a replan."""
    from repro.serve.trace import DEFAULT_SERVING_SHAPES

    engine = ServeEngine()
    problem = DEFAULT_SERVING_SHAPES[0]
    engine.dispatcher.plan(problem)          # warm the cache
    benchmark(engine.dispatcher.plan, problem)
