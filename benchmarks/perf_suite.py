"""Perf-suite harness: records a point in ``BENCH_trajectory.json``.

Not a pytest module — run it directly::

    PYTHONPATH=src python benchmarks/perf_suite.py                # full
    PYTHONPATH=src python benchmarks/perf_suite.py --ci-scale     # CI gate
    PYTHONPATH=src python benchmarks/perf_suite.py --ci-scale \\
        --no-append --point-out point.json --flamegraph perf.folded

Thin wrapper over :mod:`repro.obs.perf.suite`: runs the four canonical
workloads (table1 DSE, serve engine, fleet, SIMT simulator), measures
the fixed-work calibration yardstick, and appends the resulting point
to the trajectory database.  The CI ``perf-gate`` job runs this with
``--ci-scale --no-append --point-out`` and feeds the point to
``repro perf gate``; see docs/OBSERVABILITY.md.
"""

import argparse
import json
import os
import sys


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Run the canonical perf suite; appends a point to "
        "BENCH_trajectory.json")
    parser.add_argument("--scale", choices=("smoke", "ci", "full"),
                        default="full",
                        help="workload sizing (default: full)")
    parser.add_argument("--ci-scale", action="store_true",
                        help="shorthand for --scale ci (the gate job's "
                        "sizing)")
    parser.add_argument("--output", default="BENCH_trajectory.json",
                        help="trajectory database to append to")
    parser.add_argument("--no-append", action="store_true",
                        help="measure only; leave the trajectory file "
                        "untouched")
    parser.add_argument("--point-out", metavar="PATH",
                        help="also write the recorded point alone to PATH")
    parser.add_argument("--flamegraph", metavar="PATH",
                        help="write the run's collapsed-stack flamegraph")
    parser.add_argument("--note", metavar="TEXT",
                        help="free-form note stored in the point's meta")
    parser.add_argument("--jobs", type=int, default=None,
                        help="sweep fan-out degree (default: REPRO_JOBS)")
    parser.add_argument("--audit", action="store_true",
                        help="set REPRO_AUDIT=1 for the run: the simulator "
                        "workload re-runs the interpreted SIMT oracle and "
                        "fails on any divergence (slower; use for audited "
                        "legs, not recorded baselines)")
    args = parser.parse_args(argv)
    scale = "ci" if args.ci_scale else args.scale
    if args.audit:
        os.environ["REPRO_AUDIT"] = "1"

    from repro import obs
    from repro.obs.perf import append_point, collapsed_stacks
    from repro.obs.perf import suite as perf_suite

    obs.reset_registry()
    tracer = obs.reset_tracer()
    point = perf_suite.run_suite(
        scale=scale, jobs=args.jobs, note=args.note,
        progress=lambda msg: print(msg, flush=True))

    if args.flamegraph:
        with open(args.flamegraph, "w") as fh:
            fh.write(collapsed_stacks(tracer))
        print("flamegraph written to %s" % args.flamegraph)
    if args.point_out:
        with open(args.point_out, "w") as fh:
            json.dump(point, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print("point written to %s" % args.point_out)
    if not args.no_append:
        doc = append_point(args.output, point)
        print("appended point %d to %s"
              % (len(doc["points"]) - 1, args.output))

    for workload, metrics in sorted(point["workloads"].items()):
        print("  %-14s wall %8.3fs" % (workload, metrics.get("wall_s", 0.0)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
