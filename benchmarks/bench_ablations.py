"""Benchmarks: the ablations DESIGN.md calls out — each isolates one
design decision of the paper's kernels."""

import pytest

from repro.bench.figures import (
    ablation_adaptive_config,
    ablation_bank_policy,
    ablation_prefetch,
    ablation_thread_layout,
    ablation_unmatched,
    ablation_writeback,
)


def test_ablation_unmatched(benchmark, save_experiment):
    """Matched vs unmatched W_CD for both kernels."""
    exp = benchmark(ablation_unmatched)
    save_experiment(exp)
    for row in exp.rows:
        assert row.values["unmatched"] < row.values["matched"]


def test_ablation_bank_policy(benchmark, save_experiment):
    """Paper's serialization model vs hardware word-merge."""
    exp = benchmark(ablation_bank_policy)
    save_experiment(exp, precision=2)
    unmatched = next(r for r in exp.rows if r.label == "unmatched")
    assert unmatched.values["paper-policy"] == pytest.approx(2.0, rel=0.01)
    matched = next(r for r in exp.rows if r.label == "matched")
    assert matched.values["paper-policy"] == pytest.approx(1.0, rel=0.01)


def test_ablation_writeback(benchmark, save_experiment):
    """Sec. 4.2: the uncoalesced writeback 'consumes very little time'."""
    exp = benchmark(ablation_writeback)
    save_experiment(exp, precision=2)
    for row in exp.rows:
        assert row.values["write share"] < 10.0


def test_ablation_prefetch(benchmark, save_experiment):
    """Software prefetching matters exactly when occupancy is low."""
    exp = benchmark(ablation_prefetch)
    save_experiment(exp)
    low = next(r for r in exp.rows if "low-occupancy" in r.label)
    assert low.values["prefetch"] > 1.1 * low.values["no prefetch"]
    high = next(r for r in exp.rows if r.label == "general 3x3")
    assert high.values["prefetch"] == pytest.approx(high.values["no prefetch"])


def test_ablation_thread_layout(benchmark, save_experiment):
    """Contiguous-output-per-thread cuts SM image traffic (Sec. 4.2)."""
    exp = benchmark(ablation_thread_layout)
    save_experiment(exp, precision=3)
    for row in exp.rows:
        assert row.values["(WT+K-1)/(WT*K)"] < 0.5


def test_ablation_adaptive_config(benchmark, save_experiment):
    """Per-problem tile selection removes the paper's 32x32 losses."""
    exp = benchmark(ablation_adaptive_config)
    save_experiment(exp)
    for row in exp.rows:
        assert row.values["adaptive"] >= 0.999 * row.values["fixed"]
        # Adaptive is at worst ~10% behind the cuDNN-like baseline even
        # on the smallest images, and usually ahead.
        assert row.values["adaptive"] > 0.9 * row.values["cuDNN"]
