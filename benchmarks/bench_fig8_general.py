"""Benchmark: regenerate paper Fig. 8 (general case vs cuDNN).

Paper claims: 30.5% / 45.3% / 30.8% average improvement for 3x3 / 5x5 /
7x7 (35.5% overall); losses possible only on very small (32x32) images;
peak throughput 2020 GFlop/s (47% of the K40m's peak).
"""

import numpy as np
import pytest

from repro.bench.figures import fig8_general
from repro.bench.report import summarize_ratio


@pytest.mark.parametrize("kernel_size", [3, 5, 7], ids=["3x3", "5x5", "7x7"])
def test_fig8(benchmark, save_experiment, kernel_size):
    exp = benchmark(fig8_general, kernel_size)
    save_experiment(exp)

    gain = summarize_ratio(exp, "ours", "cuDNN")
    assert 0.10 < gain["mean"] - 1 < 0.80

    # Losses, where they occur, are confined to small images (the
    # paper's 32x32 caveat; see EXPERIMENTS.md for the K=7 note).
    for row in exp.rows:
        ratio = row.ratio("ours", "cuDNN")
        if ratio < 0.95:
            assert "N=32," in row.label or "N=64," in row.label
            assert ratio > (0.60 if "N=32," in row.label else 0.85)


def test_fig8_overall_average(benchmark):
    def build():
        return [fig8_general(k).mean_ratio("ours", "cuDNN") for k in (3, 5, 7)]

    means = benchmark(build)
    overall = float(np.mean(means)) - 1
    # Paper: 35.5% overall.
    assert 0.20 < overall < 0.55


def test_fig8_peak_throughput(benchmark):
    exp = benchmark(fig8_general, 3)
    peak = max(exp.series("ours"))
    # Paper: 2020 GFlop/s peak — 47% of the 4290 GFlop/s machine peak.
    assert 1700 < peak < 3000
