"""Benchmark: verify every quantitative claim of the paper.

This is the repository's reproduction statement in one test: all of the
paper's claims, regenerated from the library and checked against the
bands documented in EXPERIMENTS.md.
"""

from repro.bench.claims import PAPER_CLAIMS, format_claim_results, verify_claims


def test_all_paper_claims(benchmark, output_dir):
    pairs = benchmark.pedantic(verify_claims, rounds=1, iterations=1)
    text = format_claim_results(pairs)
    (output_dir / "claims.txt").write_text(text + "\n")
    print(text)

    failures = [c.claim_id for c, r in pairs if not r.supported]
    assert not failures, "diverging claims: %s" % failures
    assert len(pairs) == len(PAPER_CLAIMS)
