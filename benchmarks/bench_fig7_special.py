"""Benchmark: regenerate paper Fig. 7 (special case, C = 1, vs cuDNN).

Paper claims: 6.16x (1x1), 6.43x (3x3), 2.90x (5x5) average gains —
5.16x overall; >10x when F = 1; the unmatched kernel is 19% slower for
the 3x3 filter.
"""

import numpy as np
import pytest

from repro.bench.figures import fig7_special
from repro.bench.report import summarize_ratio


@pytest.mark.parametrize("kernel_size", [1, 3, 5], ids=["1x1", "3x3", "5x5"])
def test_fig7(benchmark, save_experiment, kernel_size):
    exp = benchmark(fig7_special, kernel_size)
    save_experiment(exp)

    gain = summarize_ratio(exp, "ours", "cuDNN")
    # Paper averages 2.9x-6.4x per filter size; our sweep mixes F
    # values differently (the paper's x-ticks are not published), so
    # accept the same regime per filter size.
    assert gain["mean"] > 2.0

    # F=1: the paper reports >10x.  The 1x1 filter has no data reuse
    # (the paper's own caveat for Fig. 7a), so its F=1 margin is lower.
    f1 = [r.ratio("ours", "cuDNN") for r in exp.rows
          if "F=1" in r.label and "N=512" not in r.label]
    assert min(f1) > (10.0 if kernel_size > 1 else 6.0)


def test_fig7_overall_average(benchmark):
    def build():
        return [fig7_special(k).mean_ratio("ours", "cuDNN") for k in (1, 3, 5)]

    means = benchmark(build)
    overall = float(np.mean(means))
    # Paper: 5.16x average across the three filter sizes.
    assert 3.0 < overall < 12.0


def test_fig7_unmatched_kernel_slower(benchmark):
    exp = benchmark(fig7_special, 3)
    penalties = [
        1 - r.values["unmatched"] / r.values["ours"]
        for r in exp.rows if "F=32" in r.label
    ]
    # Paper: 19% for the 3x3 filter.
    assert 0.05 < float(np.mean(penalties)) < 0.30
