"""Benchmarks: the paper's Sec. 6 future-work extensions and the
related-work landscape, quantified."""

import pytest

from repro.bench.figures import (
    extension_all_methods,
    extension_arch_port,
    extension_fft_batch,
    extension_fp16_conv,
    extension_short_dtypes,
    extension_stencil,
    extension_training,
)


def test_short_dtypes(benchmark, save_experiment):
    """fp16/int8 are mismatched even on 4-byte-bank architectures."""
    exp = benchmark(extension_short_dtypes)
    save_experiment(exp)

    half = next(r for r in exp.rows if r.label == "half")
    char = next(r for r in exp.rows if r.label == "char")
    assert half.values["Kepler K40m"] == pytest.approx(4.0)
    assert half.values["Maxwell GM204"] == pytest.approx(2.0)
    assert char.values["Maxwell GM204"] == pytest.approx(4.0)


def test_all_methods_landscape(benchmark, save_experiment):
    """All six implemented convolution methods on VGG-like layers."""
    exp = benchmark(extension_all_methods)
    save_experiment(exp)

    for row in exp.rows:
        # Direct (ours) beats naive, FFT-at-batch-1, and the GEMM
        # methods on every layer...
        assert row.values["ours"] > row.values["naive"]
        assert row.values["ours"] > row.values["FFT"]
        assert row.values["ours"] >= 0.95 * row.values["cuDNN-like"]
    # ...while Winograd's 2.25x multiply reduction wins on deep 3x3
    # layers, exactly the niche the paper concedes to it.
    deep = next(r for r in exp.rows if "conv4" in r.label)
    assert deep.values["Winograd"] > deep.values["ours"]


def test_dtype_convolution(benchmark, save_experiment):
    """Sec. 6 end to end: unmatched penalty grows with the mismatch."""
    exp = benchmark(extension_fp16_conv)
    save_experiment(exp, precision=2)

    penalties = {r.label.split()[0]: r.values["penalty %"] for r in exp.rows}
    assert penalties["char"] > penalties["half"] > penalties["float"] > 5.0
    # And the matched kernel actually converts smaller elements to speed.
    rows = {r.label.split()[0]: r.values["matched"] for r in exp.rows}
    assert rows["half"] > 1.3 * rows["float"]
    assert rows["char"] > 1.3 * rows["half"]


def test_stencil_application(benchmark, save_experiment):
    """The kernels carry to Jacobi relaxation (Sec. 6: other apps)."""
    exp = benchmark(extension_stencil)
    save_experiment(exp, precision=2)
    for row in exp.rows:
        assert row.values["matched"] >= row.values["unmatched"]
        assert row.values["matched"] > 1.0  # Gupdates/s scale


def test_training_passes(benchmark, save_experiment):
    """Forward, dgrad and wgrad all run on the paper's kernels."""
    exp = benchmark(extension_training)
    save_experiment(exp, precision=3)
    for row in exp.rows:
        assert row.values["forward"] > 0
        assert row.values["dgrad"] > 0
        # The wgrad mapping works but is the least efficient of the
        # three passes — the reason dedicated wgrad kernels exist.
        assert row.values["wgrad"] > row.values["dgrad"]


def test_fft_batch_crossover(benchmark, save_experiment):
    """FFT loses at batch 1 and wins at a large batch (Sec. 1)."""
    exp = benchmark(extension_fft_batch)
    save_experiment(exp)
    first, last = exp.rows[0], exp.rows[-1]
    assert first.values["FFT"] < first.values["ours"]
    assert last.values["FFT"] > last.values["ours"]
    # FFT throughput grows monotonically with the batch.
    fft = exp.series("FFT")
    assert all(a <= b for a, b in zip(fft, fft[1:]))


def test_arch_port(benchmark, save_experiment):
    """Sec. 6: the kernel ports; only mismatched devices pay."""
    exp = benchmark(extension_arch_port)
    save_experiment(exp)
    kepler = next(r for r in exp.rows if "Kepler" in r.label)
    fermi = next(r for r in exp.rows if "Fermi" in r.label)
    maxwell = next(r for r in exp.rows if "Maxwell" in r.label)
    assert kepler.values["gap %"] > 10.0
    assert abs(fermi.values["gap %"]) < 1.0
    assert abs(maxwell.values["gap %"]) < 1.0
    # Throughput tracks each machine's bandwidth class.
    assert maxwell.values["matched"] > fermi.values["matched"] * 0.5
